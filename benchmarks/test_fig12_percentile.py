"""Fig. 12 — 1st percentile of remaining idle time vs idle time passed.

Paper: even the *1st percentile* of remaining idle time (i.e. "in 99%
of cases we have at least this much left") increases strongly with the
time already spent idle — the conservative version of Fig. 11's
decreasing-hazard evidence.
"""

import numpy as np
import pytest

from conftest import cached_idle, run_once, show
from repro.stats import percentile_remaining

HEAVY = ["MSRsrc11", "MSRusr1", "HPc6t5d1", "HPc6t8d0"]
TAUS = np.array([1e-3, 1e-2, 1e-1, 1.0])
DURATION = 4 * 3600.0


def measure():
    curves = {}
    for name in HEAVY:
        _, durations = cached_idle(name, DURATION)
        curves[name] = percentile_remaining(durations, TAUS, q=1.0)
    return curves


def test_fig12_first_percentile_remaining(benchmark):
    curves = run_once(benchmark, measure)
    benchmark.extra_info["curves"] = {
        k: [None if np.isnan(x) else float(x) for x in v]
        for k, v in curves.items()
    }
    show(
        "Fig. 12: 1st percentile of remaining idle time (s)",
        f"{'trace':<12}" + "".join(f"{t:>12.4g}" for t in TAUS),
        [
            f"{name:<12}"
            + "".join(
                f"{v:>12.5f}" if np.isfinite(v) else f"{'n/a':>12}"
                for v in curve
            )
            for name, curve in curves.items()
        ],
    )
    for name, curve in curves.items():
        finite = curve[np.isfinite(curve)]
        assert len(finite) >= 3, name
        # Strongly increasing trend (paper: "again strongly increasing").
        assert finite[-1] > 5 * max(finite[0], 1e-9), name
        assert np.all(np.diff(finite) >= -1e-12), name
