"""Fig. 4 — SCSI VERIFY service times vs request size, three drives.

Paper: service times stay almost constant for requests up to 64 KB
(positioning dominates) and grow roughly linearly beyond (transfer
dominates) — e.g. the Ultrastar goes 8.8 ms (1 KB–16 KB) → 10 ms
(64 KB) → 40 ms (~2 MB).  The flat region is why 64 KB is the natural
*floor* for scrub request sizes.
"""

import numpy as np
import pytest

from conftest import run_once, show
from repro.analysis.throughput import verify_response_times
from repro.disk import (
    fujitsu_map3367np,
    fujitsu_max3073rc,
    hitachi_ultrastar_15k450,
)

SIZES_KB = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
DRIVES = [
    ("Hitachi Ultrastar 15K (SAS)", hitachi_ultrastar_15k450),
    ("Fujitsu MAX3073RC (SAS)", fujitsu_max3073rc),
    ("Fujitsu MAP3367NP (SCSI)", fujitsu_map3367np),
]


def measure():
    results = {}
    for label, factory in DRIVES:
        times = [
            float(
                np.mean(
                    verify_response_times(
                        factory(), kb * 1024, pattern="random", samples=50
                    )
                )
                * 1e3
            )
            for kb in SIZES_KB
        ]
        results[label] = times
    return results


def test_fig04_verify_service_times(benchmark):
    results = run_once(benchmark, measure)
    benchmark.extra_info["service_ms"] = results
    show(
        "Fig. 4: SCSI VERIFY service time (ms) vs request size",
        " " * 30 + " ".join(f"{s:>6d}K" for s in SIZES_KB),
        [
            f"{label:<30}" + " ".join(f"{t:7.2f}" for t in times)
            for label, times in results.items()
        ],
    )
    for label, times in results.items():
        times = np.array(times)
        flat = times[: SIZES_KB.index(64) + 1]
        # Flat within ~25% up to 64 KB...
        assert flat.max() <= 1.25 * flat.min(), label
        # ...then clearly growing: 1 MB and 4 MB cost much more.
        assert times[SIZES_KB.index(1024)] > 1.8 * flat.min(), label
        assert times[SIZES_KB.index(4096)] > 4.0 * flat.min(), label
    # The 10k rpm SCSI disk is slower than the 15k SAS drives.
    assert results["Fujitsu MAP3367NP (SCSI)"][0] > results[
        "Hitachi Ultrastar 15K (SAS)"
    ][0]
