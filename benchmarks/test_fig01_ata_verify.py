"""Fig. 1 — ATA vs SCSI VERIFY response times, cache on/off.

Paper: sequential VERIFY response times equal the rotation period with
the cache disabled (WD Caviar/Deskstar ~8.3 ms, Ultrastar ~4.0 ms);
enabling the cache collapses ATA VERIFY to sub-millisecond times
(0.296–0.525 ms from 1 KB to 64 KB) but leaves the SAS drive unchanged
— the evidence that ATA VERIFY is (incorrectly) served from the
on-disk cache.
"""

import numpy as np
import pytest

from conftest import run_once, show
from repro.analysis.throughput import verify_response_times
from repro.disk import (
    hitachi_deskstar_7k1000,
    hitachi_ultrastar_15k450,
    wd_caviar_blue,
)

SIZES = [1, 2, 4, 8, 16, 32, 64]  # KB (ATA VERIFY caps at 128 KB anyway)
DRIVES = [
    ("WD Caviar (SATA)", wd_caviar_blue),
    ("Hitachi Deskstar (SATA)", hitachi_deskstar_7k1000),
    ("Hitachi Ultrastar (SAS)", hitachi_ultrastar_15k450),
]


def measure():
    results = {}
    for label, factory in DRIVES:
        for cache in (False, True):
            times = []
            for size_kb in SIZES:
                sample = verify_response_times(
                    factory(), size_kb * 1024, pattern="sequential",
                    samples=40, cache_enabled=cache,
                )
                times.append(float(np.mean(sample[10:]) * 1e3))
            results[(label, cache)] = times
    return results


def test_fig01_ata_verify_cache_dependence(benchmark):
    results = run_once(benchmark, measure)
    benchmark.extra_info["response_ms"] = {
        f"{label} cache={'on' if cache else 'off'}": times
        for (label, cache), times in results.items()
    }
    rows = [
        f"{label:<26} cache={'on ' if cache else 'off'}  "
        + "  ".join(f"{t:7.3f}" for t in times)
        for (label, cache), times in results.items()
    ]
    show("Fig. 1: VERIFY response times (ms) by size (KB)",
         " " * 38 + "  ".join(f"{s:>5d}K" for s in SIZES), rows)

    for label, factory in DRIVES:
        spec = factory()
        off = np.array(results[(label, False)])
        on = np.array(results[(label, True)])
        # Cache-off responses sit at the rotation period for every drive.
        assert np.allclose(
            off[:4], spec.rotation_period * 1e3, rtol=0.15
        ), label
        if spec.ata_verify_cache_bug:
            # The bug: cache-on ATA VERIFY is an order of magnitude faster.
            assert np.all(on < off / 5), label
            assert on[0] < 1.0, label
        else:
            # SAS VERIFY ignores the cache entirely.
            assert np.allclose(on, off, rtol=0.05), label
