"""Telemetry overhead microbenchmark -> ``BENCH_PR3.json``.

Reruns the PR 1 kernel microbenchmark workloads (``perf_kernel.py``:
the 1M-event timeout/process churn) on the current kernel in three
telemetry configurations:

* **baseline** — ``Simulation()`` with no telemetry (the PR 1 shape);
* **null** — ``Simulation(telemetry=NULL_SINK)``: recording off.  The
  engine selects the untouched fast loop once per ``run()``, so the
  budgeted overhead is ≤ 5% of baseline (noise floor, enforced here);
* **recorder** — ``Simulation(telemetry=Recorder())``: recording on.
  The engine runs the instrumented twin loop; reported as events/sec
  so the *cost of observing* is a known, bounded trade.

Timings use ``time.process_time`` (CPU time) with min-of-N interleaved
repetitions, like ``perf_kernel.py``.

Usage::

    PYTHONPATH=src python benchmarks/perf_telemetry.py [--scale 0.1]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_kernel import PHASES, WORKLOADS  # noqa: E402

from repro import __version__  # noqa: E402
from repro import sim as kernel  # noqa: E402
from repro.telemetry import NULL_SINK, Recorder  # noqa: E402

#: NullSink overhead budget vs the no-telemetry baseline (ISSUE 3
#: acceptance criterion).
NULL_OVERHEAD_BUDGET = 0.05


class _KernelShim:
    """Quacks like the ``repro.sim`` module for the perf workloads.

    The workloads only call ``kernel.Simulation()``; this shim threads a
    fresh telemetry sink into every such construction.
    """

    def __init__(self, sink_factory):
        self._sink_factory = sink_factory

    def Simulation(self):  # noqa: N802 - mimics the module attribute
        return kernel.Simulation(telemetry=self._sink_factory())


CONFIGS = {
    "baseline": kernel,  # Simulation() exactly as PR 1 benchmarks it
    "null": _KernelShim(lambda: NULL_SINK),
    "recorder": _KernelShim(lambda: Recorder(wall_time=False)),
}


def _time_once(workload, module, events: int) -> float:
    start = time.process_time()
    workload(module, events)
    return time.process_time() - start


def run_telemetry_benchmark(scale: float = 1.0, reps: int = 3) -> dict:
    """Measure every phase under all three configs; returns the record.

    Repetitions interleave the configs (baseline, null, recorder, ...)
    and each keeps its minimum, cancelling slow drift on a loaded
    machine.
    """
    phases = {}
    totals = {name: 0.0 for name in CONFIGS}
    total_events = 0
    for phase_name, budget in PHASES.items():
        events = max(1000, int(budget * scale))
        workload = WORKLOADS[phase_name]
        for module in CONFIGS.values():  # warm allocator / code objects
            _time_once(workload, module, 1000)
        best = {name: float("inf") for name in CONFIGS}
        for _ in range(reps):
            for name, module in CONFIGS.items():
                best[name] = min(best[name], _time_once(workload, module, events))
        phases[phase_name] = {
            "events": events,
            **{f"{name}_s": round(best[name], 4) for name in CONFIGS},
        }
        for name in CONFIGS:
            totals[name] += best[name]
        total_events += events

    null_overhead = (totals["null"] - totals["baseline"]) / totals["baseline"]
    recorder_overhead = (
        (totals["recorder"] - totals["baseline"]) / totals["baseline"]
    )
    return {
        "workload": "perf_kernel churn phases under telemetry configs",
        "timer": "time.process_time (CPU), min of interleaved reps",
        "reps": reps,
        "events": total_events,
        "phases": phases,
        "total": {
            **{f"{name}_s": round(totals[name], 4) for name in CONFIGS},
            "null_overhead": round(null_overhead, 4),
            "null_overhead_budget": NULL_OVERHEAD_BUDGET,
            "recorder_overhead": round(recorder_overhead, 4),
            "recorder_events_per_s": round(total_events / totals["recorder"]),
        },
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="event-budget multiplier (use e.g. 0.1 for a quick check)",
    )
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR3.json"),
    )
    args = parser.parse_args(argv)

    record = run_telemetry_benchmark(scale=args.scale, reps=args.reps)
    print(
        f"{'phase':<22}{'events':>9}{'baseline':>10}{'null':>10}{'recorder':>10}"
    )
    for name, row in record["phases"].items():
        print(
            f"{name:<22}{row['events']:>9,}{row['baseline_s']:>9.3f}s"
            f"{row['null_s']:>9.3f}s{row['recorder_s']:>9.3f}s"
        )
    total = record["total"]
    print(
        f"{'TOTAL':<22}{record['events']:>9,}{total['baseline_s']:>9.3f}s"
        f"{total['null_s']:>9.3f}s{total['recorder_s']:>9.3f}s"
    )
    print(
        f"NullSink overhead: {total['null_overhead']:+.1%} "
        f"(budget {NULL_OVERHEAD_BUDGET:.0%}); recorder: "
        f"{total['recorder_overhead']:+.1%} "
        f"({total['recorder_events_per_s']:,} events/s)"
    )

    payload = {
        "version": __version__,
        "python": sys.version.split()[0],
        "telemetry": record,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if total["null_overhead"] > NULL_OVERHEAD_BUDGET:
        print(
            f"WARNING: NullSink overhead {total['null_overhead']:.1%} exceeds "
            f"the {NULL_OVERHEAD_BUDGET:.0%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
