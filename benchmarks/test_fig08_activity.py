"""Fig. 8 — request activity per hour over several days (four disks).

Paper: all four representative traces show repeating patterns, most
with spikes at 24 h intervals — visible structure in requests/hour
over a week.  We regenerate the hourly counts for the same four disks
and check the repetition quantitatively (correlation between
consecutive days' hourly profiles).
"""

import numpy as np
import pytest

from conftest import run_once, show
from repro.traces import generate_trace

DISKS = ["MSRsrc11", "MSRusr1", "HPc6t5d1", "HPc6t8d0"]
DAYS = 4


def measure():
    counts = {}
    for name in DISKS:
        trace = generate_trace(
            name, duration=DAYS * 86400.0, rate_scale=0.03, seed=8
        )
        counts[name] = trace.requests_per_bin(3600.0)[: DAYS * 24]
    return counts


def day_over_day_correlation(hourly):
    days = hourly[: (len(hourly) // 24) * 24].reshape(-1, 24).astype(float)
    correlations = [
        np.corrcoef(days[i], days[i + 1])[0, 1] for i in range(len(days) - 1)
    ]
    return float(np.mean(correlations))


def test_fig08_hourly_activity(benchmark):
    counts = run_once(benchmark, measure)
    benchmark.extra_info["hourly_counts"] = {
        k: v.tolist() for k, v in counts.items()
    }
    rows = []
    for name, hourly in counts.items():
        day0 = " ".join(f"{c:5d}" for c in hourly[:24:3])
        rows.append(f"{name:<10} day-1 sample: {day0}")
    show("Fig. 8: requests per hour (every 3rd hour of day 1)", "", rows)

    for name, hourly in counts.items():
        assert hourly.sum() > 1000, name
        correlation = day_over_day_correlation(hourly)
        # Day-over-day hourly profiles repeat strongly.
        assert correlation > 0.5, (name, correlation)
        # The diurnal swing is large (busy hours >> quiet hours).
        days = hourly.reshape(-1, 24).astype(float).mean(axis=0)
        assert days.max() > 3 * max(days.min(), 1.0), name
