"""Table III — optimised Waiting parameters vs the CFQ baseline.

Paper: for slowdown goals of 1/2/4 ms per request, the optimizer picks
large request sizes (1.2–4 MB) and workload-specific wait thresholds,
reaching 38–76 MB/s of scrub throughput — versus CFQ's 6–14 MB/s at
64 KB, whose (uncontrolled) slowdown is up to three orders of
magnitude larger on busy traces.

Two parts here:

1. the analytic optimisation reproducing the table's Waiting rows and
   the CFQ throughput row;
2. a full-stack replay on the busiest window that shows CFQ's measured
   slowdown blowing up (queueing amplification) while the Waiting
   scrubber stays in the low-millisecond regime.
"""

import numpy as np
import pytest

from conftest import cached_idle, run_once, show
from repro.analysis.impact import ScrubberSetup
from repro.analysis.replay_cdf import replay_with_scrubber
from repro.analysis.slowdown import simulate_fixed_waiting
from repro.core.optimizer import ScrubParameterOptimizer
from repro.sched.request import PriorityClass

DISKS = ["HPc6t8d0", "HPc6t5d1", "MSRsrc11", "MSRusr1"]
GOALS_MS = [1.0, 2.0, 4.0]
DURATION = 4 * 3600.0
REPLAY_WINDOW = 300.0


def optimize_all(service_model, runner=None):
    table = {}
    for name in DISKS:
        trace, durations = cached_idle(name, DURATION)
        optimizer = ScrubParameterOptimizer(
            durations, len(trace), trace.duration, service_model
        )
        rows = [
            optimizer.optimize(goal / 1e3, runner=runner) for goal in GOALS_MS
        ]
        cfq = simulate_fixed_waiting(
            durations, 0.010, 65536, service_model, len(trace), trace.duration
        )
        table[name] = {"waiting": rows, "cfq": cfq}
    return table


def replay_validation(ultrastar, service_model):
    """Matched-slowdown full-stack comparison on the worst-case disk.

    The optimizer's analytic slowdown excludes queueing amplification
    (a collision also delays the burst queued behind the collided
    request), so for a like-for-like full-stack comparison we pick the
    Waiting parameters whose *measured* slowdown lands near CFQ's, and
    compare scrub throughput at that operating point.
    """
    trace, durations = cached_idle("HPc6t8d0", DURATION)
    optimizer = ScrubParameterOptimizer(
        durations, len(trace), trace.duration, service_model
    )
    chosen = optimizer.optimize(0.0002)
    window = trace.window(0.0, REPLAY_WINDOW)
    baseline = replay_with_scrubber(window, ultrastar, horizon=REPLAY_WINDOW)
    cfq = replay_with_scrubber(
        window, ultrastar,
        scrubber=ScrubberSetup(priority=PriorityClass.IDLE),
        horizon=REPLAY_WINDOW, idle_gate=0.010,
    )
    waiting = replay_with_scrubber(
        window, ultrastar,
        waiting={
            "threshold": chosen.threshold,
            "request_bytes": chosen.request_bytes,
        },
        horizon=REPLAY_WINDOW,
    )
    return {
        "cfq_slowdown": cfq.mean_slowdown_vs(baseline),
        "cfq_mbps": cfq.scrub_mbps,
        "waiting_slowdown": waiting.mean_slowdown_vs(baseline),
        "waiting_mbps": waiting.scrub_mbps,
    }


def test_tab3_waiting_vs_cfq(benchmark, ultrastar, service_model, sweep_runner):
    def run():
        table = optimize_all(service_model, runner=sweep_runner)
        validation = replay_validation(ultrastar, service_model)
        return table, validation

    table, validation = run_once(benchmark, run)
    rows = []
    for name, entry in table.items():
        for goal, best in zip(GOALS_MS, entry["waiting"]):
            rows.append(
                f"{name:<10} Waiting {goal:3.1f} ms: {best.throughput_mbps:6.2f}"
                f" MB/s  thr={best.threshold * 1e3:7.1f} ms"
                f"  size={best.request_bytes // 1024:5d} KB"
            )
        cfq = entry["cfq"]
        rows.append(
            f"{name:<10} CFQ     {cfq.mean_slowdown * 1e3:3.1f} ms:"
            f" {cfq.throughput_mbps:6.2f} MB/s  thr=   10.0 ms  size=   64 KB"
        )
    rows.append(
        "full-stack HPc6t8d0 replay: "
        f"CFQ slowdown {validation['cfq_slowdown'] * 1e3:.2f} ms"
        f" @ {validation['cfq_mbps']:.1f} MB/s vs Waiting"
        f" {validation['waiting_slowdown'] * 1e3:.2f} ms"
        f" @ {validation['waiting_mbps']:.1f} MB/s"
    )
    show("Table III: fixed Waiting approach vs CFQ", "", rows)
    benchmark.extra_info["table"] = {
        name: {
            "waiting": [
                {
                    "goal_ms": goal,
                    "throughput_mbps": best.throughput_mbps,
                    "threshold_ms": best.threshold * 1e3,
                    "size_kb": best.request_bytes // 1024,
                }
                for goal, best in zip(GOALS_MS, entry["waiting"])
            ],
            "cfq_mbps": entry["cfq"].throughput_mbps,
            "cfq_slowdown_ms": entry["cfq"].mean_slowdown * 1e3,
        }
        for name, entry in table.items()
    }
    benchmark.extra_info["replay_validation"] = {
        k: float(v) for k, v in validation.items()
    }

    for name, entry in table.items():
        throughputs = [b.throughput_mbps for b in entry["waiting"]]
        sizes = [b.request_bytes for b in entry["waiting"]]
        # Looser goals never hurt throughput, and goals are met.
        assert all(
            b >= a * 0.99 for a, b in zip(throughputs, throughputs[1:])
        ), name
        for goal, best in zip(GOALS_MS, entry["waiting"]):
            assert best.achieved_slowdown <= goal / 1e3 * 1.01, (name, goal)
        # Optimal sizes are large (paper: 1.2-4 MB), far above CFQ's 64 KB.
        assert min(sizes) >= 1024 * 1024, name
        # The paper's headline: several-fold more scrub throughput than
        # CFQ at single-millisecond slowdowns (the paper reports ~6x).
        assert throughputs[0] > 3 * entry["cfq"].throughput_mbps, name

    # Full-stack, matched measured slowdown: the Waiting scrubber
    # delivers severalfold CFQ's throughput (the paper's "six times
    # more throughput" headline).
    assert validation["waiting_slowdown"] < 2.5 * max(
        validation["cfq_slowdown"], 1e-4
    )
    assert validation["waiting_mbps"] > 3.5 * validation["cfq_mbps"]
