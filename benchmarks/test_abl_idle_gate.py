"""Ablation — CFQ's Idle-class gate threshold.

The paper notes CFQ's 10 ms gate is a fixed, workload-oblivious knob
(and that tuning it "did not seem to affect" the real scheduler).
This ablation sweeps the gate on the simulated stack: small gates let
the scrubber slip into sub-millisecond foreground gaps (hurting the
foreground), large gates starve the scrubber — with no single value
good for both, which is exactly the gap the Waiting policy's
workload-derived threshold fills.
"""

import pytest

from conftest import run_once, show
from repro.analysis.impact import ScrubberSetup, run_impact_experiment

GATES_MS = [0.0, 1.0, 5.0, 10.0, 50.0, 200.0]
HORIZON = 15.0


def measure(ultrastar):
    results = {}
    baseline = run_impact_experiment(
        ultrastar, "sequential", horizon=HORIZON
    ).foreground_mbps
    for gate_ms in GATES_MS:
        out = run_impact_experiment(
            ultrastar, "sequential", scrubber=ScrubberSetup(),
            horizon=HORIZON, idle_gate=gate_ms / 1e3,
        )
        results[gate_ms] = (out.foreground_mbps, out.scrubber_mbps)
    return baseline, results


def test_abl_idle_gate_tradeoff(benchmark, ultrastar):
    baseline, results = run_once(benchmark, lambda: measure(ultrastar))
    benchmark.extra_info["baseline_fg_mbps"] = baseline
    benchmark.extra_info["by_gate"] = {
        str(k): list(v) for k, v in results.items()
    }
    show(
        "Ablation: CFQ idle gate sweep (sequential foreground)",
        f"{'gate':>8}{'foreground':>12}{'scrubber':>10}",
        [
            f"{gate:>6.0f}ms{fg:>12.2f}{scrub:>10.2f}"
            for gate, (fg, scrub) in results.items()
        ],
    )
    # Gate 0: scrubber fills every gap, foreground suffers visibly.
    assert results[0.0][0] < 0.8 * baseline
    assert results[0.0][1] > results[10.0][1]
    # Large gates protect the foreground fully but choke the scrubber.
    assert results[200.0][0] > 0.9 * baseline
    assert results[200.0][1] < 0.7 * results[10.0][1]
    # Scrub throughput decreases monotonically with the gate.
    scrubs = [results[g][1] for g in GATES_MS]
    assert all(b <= a * 1.15 for a, b in zip(scrubs, scrubs[1:]))
