"""Perf smoke check: kernel microbenchmark + cached sweep -> BENCH_PR1.json.

Runs two measurements and writes the combined record to
``BENCH_PR1.json`` at the repo root:

1. the kernel microbenchmark (``perf_kernel.py``): the 1M-event
   timeout/process churn workload on the frozen seed kernel vs the
   current kernel;
2. a Table-III-style optimizer sweep through
   :class:`repro.parallel.SweepRunner` with a fresh on-disk
   :class:`~repro.parallel.ResultCache` — cold (every size simulated)
   vs warm (every size a cache hit, zero simulations).

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py [--scale 0.1] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_kernel import run_kernel_benchmark  # noqa: E402

from repro import __version__  # noqa: E402
from repro.analysis.service_model import ScrubServiceModel  # noqa: E402
from repro.core.optimizer import ScrubParameterOptimizer  # noqa: E402
from repro.disk import hitachi_ultrastar_15k450  # noqa: E402
from repro.parallel import ResultCache, SweepRunner  # noqa: E402
from repro.traces import generate_trace  # noqa: E402
from repro.traces.catalog import trace_idle_intervals  # noqa: E402

GOALS_MS = [1.0, 2.0, 4.0]


def run_cached_sweep() -> dict:
    """A tab3-style optimizer sweep, cold vs warm cache."""
    trace = generate_trace("MSRsrc11", duration=3600.0, seed=0)
    _, durations = trace_idle_intervals("MSRsrc11", trace)
    model = ScrubServiceModel.from_spec(hitachi_ultrastar_15k450())
    optimizer = ScrubParameterOptimizer(
        durations, len(trace), trace.duration, model
    )

    def sweep(runner):
        return [
            optimizer.optimize(goal / 1e3, runner=runner) for goal in GOALS_MS
        ]

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_runner = SweepRunner(workers=0, cache=ResultCache(cache_dir))
        start = time.process_time()
        cold = sweep(cold_runner)
        cold_s = time.process_time() - start

        warm_runner = SweepRunner(workers=0, cache=ResultCache(cache_dir))
        start = time.process_time()
        warm = sweep(warm_runner)
        warm_s = time.process_time() - start

    assert cold == warm, "cache must reproduce the cold results exactly"
    assert warm_runner.executed == 0, "warm sweep must execute zero tasks"
    return {
        "sweep": "optimizer sweep, MSRsrc11 1h trace, goals 1/2/4 ms",
        "tasks": cold_runner.executed,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else float("inf"),
        "warm_tasks_executed": warm_runner.executed,
        "warm_cache_hits": warm_runner.cache_hits,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="kernel benchmark event-budget multiplier",
    )
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--output", default=str(Path(__file__).resolve().parent.parent / "BENCH_PR1.json"),
    )
    args = parser.parse_args(argv)

    print("== kernel microbenchmark ==")
    kernel = run_kernel_benchmark(scale=args.scale, reps=args.reps)
    for name, row in kernel["phases"].items():
        print(
            f"  {name:<22}{row['events']:>9,} ev  legacy {row['legacy_s']:.3f}s"
            f"  new {row['new_s']:.3f}s  {row['speedup']:.2f}x"
        )
    print(f"  total: {kernel['total']['speedup']:.2f}x on {kernel['events']:,} events")

    print("== cached optimizer sweep ==")
    sweep = run_cached_sweep()
    print(
        f"  cold {sweep['cold_s']:.3f}s ({sweep['tasks']} tasks) -> "
        f"warm {sweep['warm_s']:.3f}s ({sweep['warm_tasks_executed']} executed, "
        f"{sweep['warm_cache_hits']} hits)"
    )

    record = {
        "version": __version__,
        "python": sys.version.split()[0],
        "kernel": kernel,
        "sweep_cache": sweep,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")
    if kernel["total"]["speedup"] < 2.0:
        print("WARNING: kernel speedup below the 2x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
