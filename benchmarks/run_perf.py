"""Perf regression suite: kernel benchmarks + cached sweep -> BENCH_PR6.json.

Runs four measurements and writes one combined, machine-stable record
(keys sorted, every row tagged with the ``kernel`` it measures) to
``BENCH_PR6.json`` at the repo root:

1. ``kernel_churn`` — the PR 1 microbenchmark (``perf_kernel.py``):
   the 1M-event timeout/process churn workload on the frozen seed
   kernel vs the current reference kernel;
2. ``kernel_vector`` — the PR 6 headline (``perf_kernel_vector.py``):
   the same 1M-event budget on the reference kernel vs the numpy
   batch-advance vector kernel, gated at 4x;
3. ``timer_pool`` — the PR 6 allocation-reduction satellite: pooled
   ``ReusableTimeout`` re-arm vs a fresh ``Timeout`` per wait on the
   reference kernel's schedule() hot path;
4. ``sweep_cache`` — a Table-III-style optimizer sweep through
   :class:`repro.parallel.SweepRunner` with a fresh on-disk
   :class:`~repro.parallel.ResultCache` — cold vs warm.

The record layout is stable across machines: ``json.dumps(...,
sort_keys=True)``, deterministic row names, and no timestamps or host
identifiers — two runs differ only in the measured seconds.

Usage::

    PYTHONPATH=src python benchmarks/run_perf.py [--scale 0.1] [--quick]
        [--output PATH]

or, from anywhere inside a checkout, ``python -m repro bench``.
``--quick`` is a smoke mode: scaled-down event budgets and no speedup
gate (the gate is only meaningful at full scale).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_kernel import run_kernel_benchmark  # noqa: E402
from perf_kernel_vector import (  # noqa: E402
    run_timer_pool_benchmark,
    run_vector_benchmark,
)

from repro import __version__  # noqa: E402
from repro.analysis.service_model import ScrubServiceModel  # noqa: E402
from repro.core.optimizer import ScrubParameterOptimizer  # noqa: E402
from repro.disk import hitachi_ultrastar_15k450  # noqa: E402
from repro.parallel import ResultCache, SweepRunner  # noqa: E402
from repro.traces import generate_trace  # noqa: E402
from repro.traces.catalog import trace_idle_intervals  # noqa: E402

GOALS_MS = [1.0, 2.0, 4.0]

#: The PR 6 acceptance gate: total vector-vs-reference speedup on the
#: 1M-event churn workload.  `make bench-kernel` re-asserts this via
#: benchmarks/test_perf_kernel_vector.py.
VECTOR_SPEEDUP_GATE = 4.0


def run_cached_sweep() -> dict:
    """A tab3-style optimizer sweep, cold vs warm cache."""
    trace = generate_trace("MSRsrc11", duration=3600.0, seed=0)
    _, durations = trace_idle_intervals("MSRsrc11", trace)
    model = ScrubServiceModel.from_spec(hitachi_ultrastar_15k450())
    optimizer = ScrubParameterOptimizer(
        durations, len(trace), trace.duration, model
    )

    def sweep(runner):
        return [
            optimizer.optimize(goal / 1e3, runner=runner) for goal in GOALS_MS
        ]

    with tempfile.TemporaryDirectory() as cache_dir:
        cold_runner = SweepRunner(workers=0, cache=ResultCache(cache_dir))
        start = time.process_time()
        cold = sweep(cold_runner)
        cold_s = time.process_time() - start

        warm_runner = SweepRunner(workers=0, cache=ResultCache(cache_dir))
        start = time.process_time()
        warm = sweep(warm_runner)
        warm_s = time.process_time() - start

    assert cold == warm, "cache must reproduce the cold results exactly"
    assert warm_runner.executed == 0, "warm sweep must execute zero tasks"
    return {
        "kernel": "reference",
        "sweep": "optimizer sweep, MSRsrc11 1h trace, goals 1/2/4 ms",
        "tasks": cold_runner.executed,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else float("inf"),
        "warm_tasks_executed": warm_runner.executed,
        "warm_cache_hits": warm_runner.cache_hits,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="kernel benchmark event-budget multiplier",
    )
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: 0.05x event budgets, no speedup gates",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR6.json"),
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = str(
            Path(__file__).resolve().parent.parent / "BENCH_PR6.json"
        )
    scale = 0.05 if args.quick else args.scale

    print("== seed kernel vs reference kernel ==")
    churn = dict(run_kernel_benchmark(scale=scale, reps=args.reps))
    churn["kernel"] = "reference"
    for name, row in churn["phases"].items():
        print(
            f"  {name:<22}{row['events']:>9,} ev  legacy {row['legacy_s']:.3f}s"
            f"  new {row['new_s']:.3f}s  {row['speedup']:.2f}x"
        )
    print(f"  total: {churn['total']['speedup']:.2f}x on {churn['events']:,} events")

    print("== reference kernel vs vector kernel ==")
    vector = dict(run_vector_benchmark(scale=scale, reps=args.reps))
    vector["kernel"] = "vector"
    for name, row in vector["phases"].items():
        print(
            f"  {name:<22}{row['events']:>9,} ev  reference "
            f"{row['reference_s']:.3f}s  vector {row['vector_s']:.3f}s  "
            f"{row['speedup']:.2f}x"
        )
    print(
        f"  total: {vector['total']['speedup']:.2f}x on "
        f"{vector['events']:,} events"
    )

    print("== pooled timer vs fresh timer (reference kernel) ==")
    pool = run_timer_pool_benchmark(waits=max(1000, int(200_000 * scale)))
    print(
        f"  fresh {pool['fresh_s']:.3f}s -> pooled {pool['pooled_s']:.3f}s "
        f"({pool['speedup']:.2f}x on {pool['waits']:,} waits)"
    )

    print("== cached optimizer sweep ==")
    sweep = run_cached_sweep()
    print(
        f"  cold {sweep['cold_s']:.3f}s ({sweep['tasks']} tasks) -> "
        f"warm {sweep['warm_s']:.3f}s ({sweep['warm_tasks_executed']} executed, "
        f"{sweep['warm_cache_hits']} hits)"
    )

    record = {
        "version": __version__,
        "python": sys.version.split()[0],
        "rows": {
            "kernel_churn": churn,
            "kernel_vector": vector,
            "timer_pool": pool,
            "sweep_cache": sweep,
        },
    }
    Path(args.output).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")
    if args.quick:
        return 0
    status = 0
    if churn["total"]["speedup"] < 2.0:
        print(
            "WARNING: reference-kernel speedup below the 2x target",
            file=sys.stderr,
        )
        status = 1
    if vector["total"]["speedup"] < VECTOR_SPEEDUP_GATE:
        print(
            f"WARNING: vector-kernel speedup below the "
            f"{VECTOR_SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
