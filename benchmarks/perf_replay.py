"""Zero-copy replay benchmark -> ``BENCH_PR4.json``.

Two wall-clock A/B phases pit the accelerated replay path against the
seed implementation, asserting bit-identical results before any
timing is reported:

* **fig7** — a Fig. 7-style three-configuration slowdown grid (CFQ
  sequential, CFQ staggered, Waiting) over a multi-hour trace cut by a
  short horizon.  Legacy = per-record generator feed plus a no-scrub
  baseline recomputed inside every task; new = batched array cursor
  plus the memoized baseline.  Gate: **>= 2x**.
* **detect** — an eight-task latent-error detection sweep fanned out
  through :class:`~repro.parallel.runner.SweepRunner` with the same
  trace as foreground load.  Legacy = the whole trace pickled to every
  worker and materialized record-by-record; new = one shared-memory
  export, zero-copy attach, lazy block conversion of only the horizon
  prefix.  Gate: **>= 4x**.

Timings use ``time.perf_counter`` (wall clock — the detect phase spends
its budget in worker processes) with min-of-N interleaved repetitions.

Usage::

    PYTHONPATH=src python benchmarks/perf_replay.py [--scale 0.1]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro import __version__  # noqa: E402
from repro.analysis.detection import detection_sweep_task  # noqa: E402
from repro.analysis.impact import ScrubberSetup  # noqa: E402
from repro.analysis.replay_cdf import (  # noqa: E402
    clear_baseline_memo,
    replay_slowdown_task,
)
from repro.parallel import SweepRunner  # noqa: E402
from repro.traces import generate_trace  # noqa: E402

#: ISSUE 4 acceptance floors (wall-clock speedup, new vs legacy).
FIG7_SPEEDUP_TARGET = 2.0
DETECT_SPEEDUP_TARGET = 4.0

#: The Fig. 7 legend, reduced to its three scrubbed configurations.
FIG7_CONFIGS = {
    "cfq-sequential": dict(scrubber=ScrubberSetup(algorithm="sequential")),
    "cfq-staggered-128": dict(
        scrubber=ScrubberSetup(algorithm="staggered", regions=128)
    ),
    "waiting-100ms": dict(waiting={"threshold": 0.1, "request_bytes": 64 * 1024}),
}

DETECT_WORKERS = 8


def _same_replay(a: dict, b: dict) -> bool:
    ra, rb = a["result"], b["result"]
    return (
        a["mean_slowdown"] == b["mean_slowdown"]
        and ra.horizon == rb.horizon
        and ra.fg_requests == rb.fg_requests
        and ra.scrub_bytes == rb.scrub_bytes
        and ra.scrub_requests == rb.scrub_requests
        and ra.trace_digest == rb.trace_digest
        and ra.fg_response_times.shape == rb.fg_response_times.shape
        and np.array_equal(ra.fg_response_times, rb.fg_response_times)
    )


def _fig7_grid(trace, horizon: float, feed: str, baseline_memo: bool) -> list:
    # Clear the in-process memo so every repetition is self-contained:
    # the legacy timing must not ride on a baseline the new path left
    # behind, and the new path must pay for its one baseline replay.
    clear_baseline_memo()
    return [
        replay_slowdown_task(
            trace,
            horizon=horizon,
            feed=feed,
            baseline_memo=baseline_memo,
            **config,
        )
        for config in FIG7_CONFIGS.values()
    ]


def _detect_params(trace, horizon: float, feed: str) -> list:
    return [
        dict(
            algorithm=algorithm,
            cylinders=40,
            model_params={"inter_burst_mean": 0.5, "in_burst_time_mean": 0.01},
            horizon=horizon,
            seed=seed,
            cache_bug=cache_bug,
            trace=trace,
            feed=feed,
        )
        for algorithm in ("sequential", "staggered")
        for cache_bug in (False, True)
        for seed in (1, 2)
    ]


def run_fig7_phase(scale: float, reps: int) -> dict:
    duration = 6 * 3600.0 * scale
    horizon = max(5.0, 150.0 * scale)
    trace = generate_trace("MSRsrc11", duration=duration, seed=3)

    variants = {
        "legacy": lambda: _fig7_grid(trace, horizon, "records", False),
        "new": lambda: _fig7_grid(trace, horizon, "arrays", True),
    }
    best = {name: float("inf") for name in variants}
    rows: dict = {}
    for _ in range(reps):
        for name, run in variants.items():
            start = time.perf_counter()
            result = run()
            best[name] = min(best[name], time.perf_counter() - start)
            rows.setdefault(name, result)

    # Bit-identity: legacy feed vs array cursor, and serial vs a sweep
    # fanned out with shared-memory trace shipping.
    parallel = SweepRunner(workers=3).map(
        replay_slowdown_task,
        [
            dict(trace=trace, horizon=horizon, **config)
            for config in FIG7_CONFIGS.values()
        ],
    )
    for seed_row, new_row, par_row in zip(rows["legacy"], rows["new"], parallel):
        if not (_same_replay(seed_row, new_row) and _same_replay(new_row, par_row)):
            raise AssertionError(
                "fig7 replay results diverged between the legacy, batched "
                "and parallel paths"
            )

    return {
        "trace": "MSRsrc11",
        "duration_s": duration,
        "records": len(trace),
        "horizon_s": horizon,
        "configs": list(FIG7_CONFIGS),
        "legacy_s": round(best["legacy"], 4),
        "new_s": round(best["new"], 4),
        "speedup": round(best["legacy"] / best["new"], 2),
        "target": FIG7_SPEEDUP_TARGET,
        "identical": True,
        "mean_slowdowns": {
            name: round(row["mean_slowdown"], 9)
            for name, row in zip(FIG7_CONFIGS, rows["new"])
        },
    }


def run_detect_phase(scale: float, reps: int) -> dict:
    duration = 4 * 3600.0 * scale
    horizon = 3.0
    trace = generate_trace("MSRsrc11", duration=duration, seed=3)

    variants = {
        "legacy": lambda: SweepRunner(
            workers=DETECT_WORKERS, share_traces=False
        ).map(detection_sweep_task, _detect_params(trace, horizon, "records")),
        "new": lambda: SweepRunner(workers=DETECT_WORKERS).map(
            detection_sweep_task, _detect_params(trace, horizon, "arrays")
        ),
    }
    best = {name: float("inf") for name in variants}
    rows: dict = {}
    for _ in range(reps):
        for name, run in variants.items():
            start = time.perf_counter()
            result = run()
            best[name] = min(best[name], time.perf_counter() - start)
            rows.setdefault(name, result)

    serial = SweepRunner(workers=0).map(
        detection_sweep_task, _detect_params(trace, horizon, "arrays")
    )
    if not (rows["legacy"] == rows["new"] == serial):
        raise AssertionError(
            "detection sweep results diverged between the pickled-records, "
            "shared-memory and serial paths"
        )

    return {
        "trace": "MSRsrc11",
        "duration_s": duration,
        "records": len(trace),
        "horizon_s": horizon,
        "tasks": len(serial),
        "workers": DETECT_WORKERS,
        "legacy_s": round(best["legacy"], 4),
        "new_s": round(best["new"], 4),
        "speedup": round(best["legacy"] / best["new"], 2),
        "target": DETECT_SPEEDUP_TARGET,
        "identical": True,
        "detected": [r.metrics.detected for r in serial],
    }


def run_replay_benchmark(scale: float = 1.0, reps: int = 2) -> dict:
    """Measure both phases; raises on any cross-path divergence."""
    return {
        "workload": "fig7 slowdown grid + 8-task detection sweep, "
        "legacy vs zero-copy replay",
        "timer": "time.perf_counter (wall clock), min of interleaved reps",
        "reps": reps,
        "fig7": run_fig7_phase(scale, reps),
        "detect": run_detect_phase(scale, reps),
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="trace-duration multiplier (use e.g. 0.1 for a quick check)",
    )
    parser.add_argument("--reps", type=int, default=2)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR4.json"),
    )
    args = parser.parse_args(argv)

    record = run_replay_benchmark(scale=args.scale, reps=args.reps)
    failed = False
    print(f"{'phase':<10}{'records':>10}{'legacy':>10}{'new':>10}{'speedup':>9}{'target':>8}")
    for phase in ("fig7", "detect"):
        row = record[phase]
        print(
            f"{phase:<10}{row['records']:>10,}{row['legacy_s']:>9.2f}s"
            f"{row['new_s']:>9.2f}s{row['speedup']:>8.2f}x"
            f"{row['target']:>7.1f}x"
        )
        if row["speedup"] < row["target"]:
            failed = True

    payload = {
        "version": __version__,
        "python": sys.version.split()[0],
        "replay": record,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failed:
        print(
            "WARNING: replay speedup below target "
            f"(fig7 {record['fig7']['speedup']}x / "
            f"{FIG7_SPEEDUP_TARGET}x, detect {record['detect']['speedup']}x / "
            f"{DETECT_SPEEDUP_TARGET}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
