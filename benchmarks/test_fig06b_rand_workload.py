"""Fig. 6b — scrubbing impact on the random synthetic workload.

Same experiment as Fig. 6a with a random 64 KB foreground: the paper
notes the same overall pattern, with the random workload's seeking
additionally decreasing the scrubber's throughput — which is the
extra assertion here.
"""

import pytest

from conftest import run_once, show
from test_fig06a_seq_workload import DELAYS_MS, measure


def test_fig06b_random_workload(benchmark, ultrastar):
    results = run_once(benchmark, lambda: measure("random", ultrastar))
    benchmark.extra_info["results"] = {
        k: list(v) if k == "None" else {a: list(t) for a, t in v.items()}
        for k, v in results.items()
    }
    rows = [f"{'None':<8} fg={results['None'][0]:6.2f}"]
    for key, entry in results.items():
        if key == "None":
            continue
        rows.append(
            f"{key:<8} fg={entry['sequential'][0]:6.2f}"
            f"  scrub(seq)={entry['sequential'][1]:5.2f}"
            f"  scrub(stag)={entry['staggered'][1]:5.2f}"
        )
    show("Fig. 6b: random foreground workload", "config / MB/s", rows)

    baseline = results["None"][0]
    # The light random foreground leaves long idle gaps, so the delay
    # ladder hits the paper's 64KB/(delay+service) values closely:
    # 3.0, 1.5, 0.9, 0.5, 0.2 MB/s for 16..256 ms.
    expected = {16: 3.0, 32: 1.5, 64: 0.9, 128: 0.5, 256: 0.2}
    for delay_ms, paper_value in expected.items():
        ours = results[f"{delay_ms}ms"]["sequential"][1]
        assert ours == pytest.approx(paper_value, rel=0.35), delay_ms
    # Foreground restored at >= 16 ms delays, hurt at 0 ms.
    assert results["0ms"]["sequential"][0] < 0.8 * baseline
    for delay_ms in (16, 32, 64, 128, 256):
        assert results[f"{delay_ms}ms"]["sequential"][0] > 0.9 * baseline
    # Staggered impact on the foreground equals sequential impact.
    for key, entry in results.items():
        if key == "None":
            continue
        assert entry["staggered"][0] == pytest.approx(
            entry["sequential"][0], rel=0.12
        ), key
