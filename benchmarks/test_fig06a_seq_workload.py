"""Fig. 6a — scrubbing impact on the sequential synthetic workload.

Paper: CFQ Idle-class back-to-back scrubbing achieves the highest
combined throughput but costs the foreground ~20%; fixed delays >=16 ms
restore the foreground at the cost of crippling the scrubber
(throughput ~ 64 KB / (service + delay): 4.9, 3.0, 1.5, 0.9, 0.5,
0.2 MB/s for 8..256 ms); staggered and sequential scrubbers behave
identically at 128 regions.

Our CFQ model dispatches the Idle class only through genuinely idle
periods (single-server drive, no NCQ overlap), so the CFQ column's
scrub throughput is lower than the paper's measured 9.2 MB/s; the
foreground-protection ordering is preserved.  See EXPERIMENTS.md.
"""

import pytest

from conftest import run_once, show
from repro.analysis.impact import ScrubberSetup, run_impact_experiment
from repro.sched.request import PriorityClass

HORIZON = 20.0
DELAYS_MS = [0, 8, 16, 32, 64, 128, 256]
WORKLOAD = "sequential"


def measure(workload, ultrastar):
    alone = run_impact_experiment(ultrastar, workload, horizon=HORIZON)
    results = {"None": (alone.foreground_mbps,)}
    results["CFQ"] = {}
    for alg in ("sequential", "staggered"):
        cfg = ScrubberSetup(algorithm=alg, priority=PriorityClass.IDLE)
        out = run_impact_experiment(
            ultrastar, workload, scrubber=cfg, horizon=HORIZON
        )
        results["CFQ"][alg] = (out.foreground_mbps, out.scrubber_mbps)
    for delay_ms in DELAYS_MS:
        entry = {}
        for alg in ("sequential", "staggered"):
            cfg = ScrubberSetup(
                algorithm=alg, priority=PriorityClass.BE,
                delay=delay_ms / 1e3,
            )
            out = run_impact_experiment(
                ultrastar, workload, scrubber=cfg, horizon=HORIZON
            )
            entry[alg] = (out.foreground_mbps, out.scrubber_mbps)
        results[f"{delay_ms}ms"] = entry
    return results


def check_and_show(results, title):
    rows = [f"{'None':<8} fg={results['None'][0]:6.2f}"]
    for key, entry in results.items():
        if key == "None":
            continue
        seq_fg, seq_scrub = entry["sequential"]
        stag_fg, stag_scrub = entry["staggered"]
        rows.append(
            f"{key:<8} fg={seq_fg:6.2f}  scrub(seq)={seq_scrub:5.2f}"
            f"  scrub(stag)={stag_scrub:5.2f}"
        )
    show(title, "config / MB/s", rows)

    baseline = results["None"][0]
    for key, entry in results.items():
        if key == "None":
            continue
        # Staggered and sequential scrubbing have the same *impact* on
        # the foreground at 128 regions (the paper's repeated note)...
        assert entry["staggered"][0] == pytest.approx(
            entry["sequential"][0], rel=0.12
        ), key
        # ...and comparable scrub throughput (staggered is somewhat
        # faster in our model, as in Fig. 5).
        ratio = (entry["staggered"][1] + 1e-9) / (entry["sequential"][1] + 1e-9)
        assert 0.7 < ratio < 1.6, key
    # 0 ms delay at Default priority crushes the foreground...
    assert results["0ms"]["sequential"][0] < 0.75 * baseline
    # ...while delays >= 16 ms essentially restore it but cap the
    # scrubber at ~64KB/delay.
    for delay_ms in (16, 32, 64, 128, 256):
        entry = results[f"{delay_ms}ms"]["sequential"]
        assert entry[0] > 0.85 * baseline, delay_ms
        cap = 65536 / (delay_ms / 1e3) / 1e6
        assert entry[1] < cap, delay_ms
    # Scrub throughput falls monotonically with the delay.
    ladder = [results[f"{d}ms"]["sequential"][1] for d in DELAYS_MS]
    assert all(b <= a * 1.1 for a, b in zip(ladder, ladder[1:]))
    # CFQ protects the foreground relative to 0 ms Default.
    assert results["CFQ"]["sequential"][0] > results["0ms"]["sequential"][0]
    return results


def test_fig06a_sequential_workload(benchmark, ultrastar):
    results = run_once(benchmark, lambda: measure(WORKLOAD, ultrastar))
    benchmark.extra_info["results"] = {
        k: list(v) if k == "None" else {a: list(t) for a, t in v.items()}
        for k, v in results.items()
    }
    check_and_show(results, "Fig. 6a: sequential foreground workload")
