"""Fig. 10 — fraction of total idle time in the largest idle intervals.

Paper: for all (Cello/MSR) traces, typically more than 80% of the idle
time is concentrated in less than 15% of the idle intervals; the TPC-C
traces, being memoryless, show no such concentration.
"""

import pytest

from conftest import cached_idle, run_once, show
from repro.stats.tails import idle_share_of_largest, tail_concentration

HEAVY = ["MSRsrc11", "MSRusr1", "HPc6t5d1", "HPc6t8d0"]
DURATION = 4 * 3600.0


def measure():
    results = {}
    for name in HEAVY:
        _, durations = cached_idle(name, DURATION)
        results[name] = {
            "share_15pct": idle_share_of_largest(durations, 0.15),
            "share_5pct": idle_share_of_largest(durations, 0.05),
            "intervals": len(durations),
        }
    _, tpcc = cached_idle("TPCdisk66", 1200.0)
    results["TPCdisk66"] = {
        "share_15pct": idle_share_of_largest(tpcc, 0.15),
        "share_5pct": idle_share_of_largest(tpcc, 0.05),
        "intervals": len(tpcc),
    }
    return results


def test_fig10_idle_time_concentration(benchmark):
    results = run_once(benchmark, measure)
    benchmark.extra_info["concentration"] = results
    show(
        "Fig. 10: idle-time share of the largest intervals",
        f"{'trace':<12}{'top 5%':>10}{'top 15%':>10}{'intervals':>12}",
        [
            f"{name:<12}{r['share_5pct']:>10.1%}{r['share_15pct']:>10.1%}"
            f"{r['intervals']:>12,}"
            for name, r in results.items()
        ],
    )
    for name in HEAVY:
        # The paper's headline: >80% of idle time in <15% of intervals.
        assert results[name]["share_15pct"] > 0.80, name
    # Memoryless TPC-C shows far weaker concentration.
    assert results["TPCdisk66"]["share_15pct"] < 0.6

    # The concentration curve itself is a valid, monotone CDF-like curve.
    _, durations = cached_idle("MSRsrc11", DURATION)
    fractions, idle = tail_concentration(durations)
    assert idle[-1] == pytest.approx(1.0)
    assert all(idle[i] <= idle[i + 1] + 1e-12 for i in range(len(idle) - 1))
