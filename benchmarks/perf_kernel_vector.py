"""Vector-kernel benchmark: reference engine vs the numpy batch kernel.

Runs a 1M-event workload through both the reference ``Simulation`` and
the :class:`repro.sim.VectorSimulation` batch-advance backend and
reports per-phase and total speedups.  Three phases cover the shapes
the vector kernel was built for — and one it was not:

* ``batch_timer_churn`` — a process pre-schedules a replay window's
  worth of pure timers, then the engine drains them to the next
  decision point.  The reference kernel pays a ``heappush``/``heappop``
  pair per timer; the vector kernel absorbs the whole window with one
  ``schedule_timers`` call and retires it with one ``searchsorted``.
* ``mixed_decision`` — small timer batches interleaved with process
  decision points, so every batch boundary is exercised (absorb, merge,
  bulk-skip, resume).
* ``process_churn`` — short-lived processes yielding individual
  timeouts.  This is the honesty row: the code is identical under both
  kernels and the expected speedup is ~1x, because generator resumption
  is a decision point the vector kernel cannot batch past.

Every phase asserts that both kernels finish at the *same* simulated
clock — the speedup is only meaningful if the two backends did the
same work.

Timings use ``time.process_time`` (CPU time) with min-of-N interleaved
repetitions, so results are stable on shared/noisy machines.  The
module also carries :func:`run_timer_pool_benchmark`, the PR 6
allocation-reduction microbenchmark: a pooled
:class:`~repro.sim.ReusableTimeout` re-armed in place vs a fresh
``Timeout`` object per wait on the reference kernel.

Run directly (``PYTHONPATH=src python benchmarks/perf_kernel_vector.py``)
or via ``benchmarks/run_perf.py`` / ``repro bench``, which also write
``BENCH_PR6.json`` and enforce the 4x gate.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.sim import ReusableTimeout, make_simulation

#: Phase event budgets; they sum to the 1M-event headline workload.
#: The split mirrors the profile of a trace-replay experiment: most
#: events are pre-schedulable timers, a minority are decision points.
PHASES = {
    "batch_timer_churn": 700_000,
    "mixed_decision": 200_000,
    "process_churn": 100_000,
}

#: Pre-scheduled wave size for the batch phase: one trace-replay
#: window's worth of arrivals.
BATCH_WAVE = 350_000

#: Timers per decision point in the mixed phase.
MIXED_BATCH = 200


# -- workloads (take the kernel name; return the final clock) -------------


def batch_timer_churn(kernel: str, events: int) -> float:
    """Pre-schedule a window of pure timers, drain it, repeat."""
    sim = make_simulation(kernel)
    wave = min(events, BATCH_WAVE)
    waves = max(1, events // wave)
    if kernel == "vector":
        delays = (np.arange(wave - 1, dtype=np.float64) % 97) + 1.0

        def producer(sim):
            for _ in range(waves):
                sim.schedule_timers(delays)
                # Yield past the wave so the backbone drains fully
                # before the next window is absorbed.
                yield sim.timeout(100.0)

    else:
        timeout = sim.timeout

        def producer(sim):
            for _ in range(waves):
                for i in range(wave - 1):
                    timeout((i % 97) + 1.0)
                yield sim.timeout(100.0)

    sim.process(producer(sim))
    sim.run()
    return sim.now


def mixed_decision(kernel: str, events: int) -> float:
    """Small timer batches interleaved with process decision points."""
    sim = make_simulation(kernel)
    rounds = max(1, events // (MIXED_BATCH + 1))
    if kernel == "vector":
        delays = (np.arange(MIXED_BATCH, dtype=np.float64) % 13) + 0.25

        def churner(sim):
            for _ in range(rounds):
                sim.schedule_timers(delays)
                yield sim.timeout(20.0)

    else:
        timeout = sim.timeout

        def churner(sim):
            for _ in range(rounds):
                for i in range(MIXED_BATCH):
                    timeout((i % 13) + 0.25)
                yield sim.timeout(20.0)

    sim.process(churner(sim))
    sim.run()
    return sim.now


def process_churn(kernel: str, events: int) -> float:
    """Batches of short-lived processes, two yields each (honesty row)."""
    sim = make_simulation(kernel)
    workers = events // 4
    batch = 200

    def worker(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    def spawner(sim):
        spawned = 0
        while spawned < workers:
            for _ in range(min(batch, workers - spawned)):
                sim.process(worker(sim))
            spawned += batch
            yield sim.timeout(3.0)

    sim.process(spawner(sim))
    sim.run()
    return sim.now


WORKLOADS = {
    "batch_timer_churn": batch_timer_churn,
    "mixed_decision": mixed_decision,
    "process_churn": process_churn,
}


# -- measurement ----------------------------------------------------------


def _time_once(workload, kernel: str, events: int) -> tuple:
    start = time.process_time()
    now = workload(kernel, events)
    return time.process_time() - start, now


def run_vector_benchmark(scale: float = 1.0, reps: int = 3) -> dict:
    """Measure every phase on both backends; returns the result record.

    Repetitions interleave the two kernels (reference, vector,
    reference, vector, ...) and each side keeps its minimum, cancelling
    slow drift on a loaded machine.  Each phase asserts both backends
    reach the same simulated clock.
    """
    phases = {}
    total_reference = 0.0
    total_vector = 0.0
    total_events = 0
    for name, budget in PHASES.items():
        events = max(1000, int(budget * scale))
        workload = WORKLOADS[name]
        # Warm both backends once (allocator, code objects).
        _time_once(workload, "reference", 1000)
        _time_once(workload, "vector", 1000)
        reference_best = float("inf")
        vector_best = float("inf")
        reference_now = vector_now = None
        for _ in range(reps):
            elapsed, reference_now = _time_once(workload, "reference", events)
            reference_best = min(reference_best, elapsed)
            elapsed, vector_now = _time_once(workload, "vector", events)
            vector_best = min(vector_best, elapsed)
        assert reference_now == vector_now, (
            f"{name}: backends diverged at clock "
            f"{reference_now} vs {vector_now}"
        )
        phases[name] = {
            "kernel": "vector",
            "events": events,
            "reference_s": round(reference_best, 4),
            "vector_s": round(vector_best, 4),
            "speedup": round(reference_best / vector_best, 3)
            if vector_best > 0
            else float("inf"),
        }
        total_reference += reference_best
        total_vector += vector_best
        total_events += events
    return {
        "workload": "batch-advance vector kernel vs reference engine",
        "timer": "time.process_time (CPU), min of interleaved reps",
        "reps": reps,
        "events": total_events,
        "phases": phases,
        "total": {
            "reference_s": round(total_reference, 4),
            "vector_s": round(total_vector, 4),
            "speedup": round(total_reference / total_vector, 3)
            if total_vector > 0
            else float("inf"),
        },
    }


def run_timer_pool_benchmark(waits: int = 200_000, reps: int = 3) -> dict:
    """PR 6 allocation reduction: pooled vs fresh timer on the reference
    kernel.

    A single process performs ``waits`` sequential sleeps.  The
    ``fresh`` side allocates a new ``Timeout`` event per wait (the PR 1
    hot path); the ``pooled`` side re-arms one
    :class:`~repro.sim.ReusableTimeout` in place, which is what the
    scrubber's delay loop and the device dispatcher's recheck timer do
    since this PR.
    """

    def fresh() -> float:
        sim = make_simulation("reference")

        def sleeper(sim):
            for _ in range(waits):
                yield sim.timeout(1.0)

        sim.process(sleeper(sim))
        sim.run()
        return sim.now

    def pooled() -> float:
        sim = make_simulation("reference")

        def sleeper(sim):
            timer = ReusableTimeout(sim)
            for _ in range(waits):
                yield timer.arm(1.0)

        sim.process(sleeper(sim))
        sim.run()
        return sim.now

    fresh_best = float("inf")
    pooled_best = float("inf")
    for _ in range(reps):
        start = time.process_time()
        fresh_now = fresh()
        fresh_best = min(fresh_best, time.process_time() - start)
        start = time.process_time()
        pooled_now = pooled()
        pooled_best = min(pooled_best, time.process_time() - start)
    assert fresh_now == pooled_now, "pooled timer changed the clock"
    return {
        "kernel": "reference",
        "workload": "sequential sleeps: fresh Timeout vs pooled ReusableTimeout",
        "waits": waits,
        "fresh_s": round(fresh_best, 4),
        "pooled_s": round(pooled_best, 4),
        "speedup": round(fresh_best / pooled_best, 3)
        if pooled_best > 0
        else float("inf"),
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="event-budget multiplier (use e.g. 0.1 for a quick check)",
    )
    parser.add_argument("--reps", type=int, default=3)
    args = parser.parse_args(argv)

    record = run_vector_benchmark(scale=args.scale, reps=args.reps)
    print(f"{'phase':<22}{'events':>9}{'reference':>11}{'vector':>9}{'speedup':>9}")
    for name, row in record["phases"].items():
        print(
            f"{name:<22}{row['events']:>9,}{row['reference_s']:>10.3f}s"
            f"{row['vector_s']:>8.3f}s{row['speedup']:>8.2f}x"
        )
    total = record["total"]
    print(
        f"{'TOTAL':<22}{record['events']:>9,}{total['reference_s']:>10.3f}s"
        f"{total['vector_s']:>8.3f}s{total['speedup']:>8.2f}x"
    )
    pool = run_timer_pool_benchmark(waits=max(1000, int(200_000 * args.scale)))
    print(
        f"timer pool: fresh {pool['fresh_s']:.3f}s -> pooled "
        f"{pool['pooled_s']:.3f}s ({pool['speedup']:.2f}x on "
        f"{pool['waits']:,} waits)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
