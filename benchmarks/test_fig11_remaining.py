"""Fig. 11 — expected remaining idle time vs idle time already passed.

Paper: for all Cello/MSR traces the curves are continuously
*increasing* — having been idle a long time raises the expected
remaining idle time by orders of magnitude (decreasing hazard rates).
The TPC-C traces are flat (memoryless).
"""

import numpy as np
import pytest

from conftest import cached_idle, run_once, show
from repro.stats import expected_remaining

HEAVY = ["MSRsrc11", "MSRusr1", "HPc6t5d1", "HPc6t8d0"]
TAUS = np.array([1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0])
DURATION = 4 * 3600.0


def measure():
    curves = {}
    for name in HEAVY:
        _, durations = cached_idle(name, DURATION)
        curves[name] = expected_remaining(durations, TAUS)
    _, tpcc = cached_idle("TPCdisk66", 1200.0)
    curves["TPCdisk66"] = expected_remaining(
        tpcc, np.array([1e-4, 5e-4, 1e-3, 2e-3])
    )
    return curves


def test_fig11_expected_remaining_idle(benchmark):
    curves = run_once(benchmark, measure)
    benchmark.extra_info["curves"] = {
        k: [None if np.isnan(x) else float(x) for x in v]
        for k, v in curves.items()
    }
    show(
        "Fig. 11: E[remaining idle | idle >= tau] (s)",
        f"{'trace':<12}" + "".join(f"{t:>10.4g}" for t in TAUS),
        [
            f"{name:<12}"
            + "".join(
                f"{v:>10.3f}" if np.isfinite(v) else f"{'n/a':>10}"
                for v in curve
            )
            for name, curve in curves.items()
            if name != "TPCdisk66"
        ],
    )

    for name in HEAVY:
        curve = curves[name]
        finite = curve[np.isfinite(curve)]
        # Continuously increasing, spanning orders of magnitude.
        assert np.all(np.diff(finite) > 0), name
        assert finite[-1] > 20 * finite[0], name
    # TPC-C: flat within noise (memoryless).
    tpcc = curves["TPCdisk66"]
    finite = tpcc[np.isfinite(tpcc)]
    assert finite.max() < 3 * finite.min()
