"""Observability overhead benchmark: monitoring must be (nearly) free.

Writes ``BENCH_PR8.json`` next to the repo root.  Four rows:

* ``obs_monitor_overhead`` — the same serial campaign bare and under a
  :class:`~repro.obs.CampaignMonitor` at a 0.25s status interval (8x
  faster than the CLI default, so a deployed monitor sits well inside
  it).  **Gated**: the monitored run must stay within 5% of the bare
  run, and the results must be bit-identical (the passivity contract);
* ``obs_monitor_worstcase`` — the same campaign at ``interval=0``,
  every event rewriting ``status.json``.  Informational: this
  configuration exists for the differential oracle and tests, not for
  operators, and its cost is dominated by filesystem traffic that
  varies wildly on shared CI boxes;
* ``obs_status_schema`` — structural checks on the final
  ``status.json`` (version, terminal state, progress 1.0, per-shard
  rows) and on the Perfetto trace (valid events, phase spans nested
  per shard).  **Gated** on every check passing;
* ``obs_report`` — wall time to build the HTML report from the obs
  directory (informational).

Bare and monitored runs are interleaved and best-of-3 timed so CPU
frequency drift and scheduler noise do not load the ratio one way.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fleet import (  # noqa: E402
    CampaignRunner,
    CampaignSpec,
    DriveClass,
    FleetSpec,
    ScrubPolicySpec,
)
from repro.obs import CampaignMonitor, build_report  # noqa: E402

OVERHEAD_LIMIT = 0.05


def make_spec(groups: int = 3000) -> CampaignSpec:
    return CampaignSpec(
        fleet=FleetSpec(
            groups=groups,
            disks_per_group=8,
            mttr_hours=24.0,
            spare_delay_hours=4.0,
            classes=(
                DriveClass(mttf_hours=1.0e5, lse_burst_rate_per_hour=1e-4),
            ),
        ),
        policies=(
            ScrubPolicySpec(name="weekly", latent_window_hours=84.0),
            ScrubPolicySpec(
                name="staggered", algorithm="staggered",
                latent_window_hours=62.0,
            ),
        ),
        mission_years=10.0,
        seed=0,
        shards=16,
    )


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def _paired_ratio(pairs: int, run_a, run_b):
    """Median B/A wall-time ratio over back-to-back paired runs.

    Timing noise on a shared box (frequency drift, neighbours, page
    cache) dwarfs a few-percent true difference when A and B are timed
    in separate blocks.  Running each pair back to back makes both
    sides see the same machine state; alternating the order inside the
    pair cancels any systematic second-run advantage; the median ratio
    discards pairs that caught a noise spike.
    """
    ratios = []
    best_a = best_b = float("inf")
    result_a = result_b = None
    for index in range(pairs):
        if index % 2 == 0:
            result_a, a_s = _timed(run_a)
            result_b, b_s = _timed(run_b)
        else:
            result_b, b_s = _timed(run_b)
            result_a, a_s = _timed(run_a)
        ratios.append(b_s / a_s)
        best_a = min(best_a, a_s)
        best_b = min(best_b, b_s)
    median = sorted(ratios)[len(ratios) // 2]
    return (result_a, best_a), (result_b, best_b), median


def _check(failures, label, ok, detail=""):
    print(f"  [{'ok' if ok else 'FAIL'}] {label}"
          + (f": {detail}" if detail else ""))
    return failures + (not ok)


def main() -> int:
    spec = make_spec()
    rows = {}
    failures = 0

    with tempfile.TemporaryDirectory() as tmp:
        obs_dir = os.path.join(tmp, "obs")

        def bare_run():
            return CampaignRunner(spec).run()

        def monitored_run():
            return CampaignRunner(
                spec, monitor=CampaignMonitor(obs_dir, interval=0.25)
            ).run()

        def worstcase_run():
            # Every event rewrites status.json — the differential
            # oracle's configuration, not an operator's.
            return CampaignRunner(
                spec, monitor=CampaignMonitor(obs_dir, interval=0.0)
            ).run()

        CampaignRunner(make_spec(groups=100)).run()  # warm caches/JIT paths
        (bare, bare_s), (monitored, mon_s), median_ratio = _paired_ratio(
            5, bare_run, monitored_run
        )
        overhead = median_ratio - 1.0
        identical = (
            monitored.metrics_dict() == bare.metrics_dict()
            and monitored.telemetry == bare.telemetry
        )
        rows["obs_monitor_overhead"] = {
            "workload": (
                f"{spec.fleet.groups} raid5 groups x 8 drives x 2 policies, "
                f"{spec.mission_years:g}y, serial, monitor interval=0.25s"
            ),
            "bare_s": round(bare_s, 4),
            "monitored_s": round(mon_s, 4),
            "overhead_fraction": round(overhead, 4),
            "method": "median ratio over 5 back-to-back pairs",
            "limit": OVERHEAD_LIMIT,
            "bit_identical": identical,
        }
        print(
            f"obs_monitor_overhead: bare {bare_s:.3f}s vs monitored "
            f"{mon_s:.3f}s, median paired ratio {overhead * 100:+.2f}% "
            f"(limit {OVERHEAD_LIMIT * 100:.0f}%)"
        )
        failures = _check(
            failures, "overhead within limit", overhead <= OVERHEAD_LIMIT,
            f"{overhead * 100:+.2f}%",
        )
        failures = _check(failures, "monitored run bit-identical", identical)

        worst, worst_s = _timed(worstcase_run)
        worst_identical = worst.metrics_dict() == bare.metrics_dict()
        rows["obs_monitor_worstcase"] = {
            "workload": "same campaign, interval=0 (status.json per event)",
            "wall_s": round(worst_s, 4),
            "overhead_fraction": round(worst_s / bare_s - 1.0, 4),
            "bit_identical": worst_identical,
        }
        print(
            f"obs_monitor_worstcase: {worst_s:.3f}s "
            f"({(worst_s / bare_s - 1.0) * 100:+.2f}%, informational)"
        )
        failures = _check(
            failures, "worst-case run bit-identical", worst_identical
        )

        print("obs_status_schema:")
        with open(os.path.join(obs_dir, "status.json")) as fh:
            status = json.load(fh)
        checks = {
            "version >= 1": status.get("version", 0) >= 1,
            "terminal state": status.get("state") in ("done", "degraded"),
            "progress 1.0": status.get("progress") == 1.0,
            "durable <= live": (
                status.get("progress") <= status.get("progress_live", 0)
            ),
            "all shards listed": (
                len(status.get("per_shard", [])) == spec.shards
            ),
            "all shards done": all(
                row["state"] == "done" for row in status.get("per_shard", [])
            ),
            "throughput recorded": (
                status.get("throughput", {}).get("drive_years", 0) > 0
            ),
            "final policies": (
                [p["name"] for p in status.get("final", {}).get("policies", [])]
                == ["weekly", "staggered"]
            ),
        }
        with open(os.path.join(obs_dir, "trace.json")) as fh:
            trace = json.load(fh)
        spans = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
        phases = [e for e in spans if e.get("cat") == "phase"]
        checks["trace has spans"] = len(spans) >= spec.shards
        checks["phase spans per shard"] = len(phases) == spec.shards * 2
        checks["span ids stamped"] = all(
            len(e.get("args", {}).get("span_id", "")) == 16 for e in spans
        )
        for label, ok in checks.items():
            failures = _check(failures, label, ok)
        rows["obs_status_schema"] = {
            "workload": "final status.json + trace.json structure",
            "checks": {label: bool(ok) for label, ok in checks.items()},
        }

        start = time.perf_counter()
        report_path = build_report(obs_dir)
        report_s = time.perf_counter() - start
        rows["obs_report"] = {
            "workload": "HTML report from the finished obs directory",
            "wall_s": round(report_s, 4),
            "bytes": os.path.getsize(report_path),
        }
        print(
            f"obs_report: {os.path.getsize(report_path):,} bytes "
            f"in {report_s * 1000:.1f}ms"
        )

    payload = {"python": platform.python_version(), "rows": rows}
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_PR8.json",
    )
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")
    if failures:
        print(f"FAIL: {failures} observability gate(s) failed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
