"""Frozen snapshot of the seed (pre-PR-1) simulation kernel.

This is the verbatim pure-Python kernel as it shipped in the growth
seed, kept as a single module so ``perf_kernel.py`` can measure the
optimised kernel's speedup against a stable baseline.  Do not optimise
this file -- it *is* the "before" measurement.
"""

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Sentinel for "event has no value yet".
_PENDING = object()


class Event:
    """A one-shot event that can succeed or fail exactly once.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulation`.

    Notes
    -----
    The lifecycle is ``pending -> triggered -> processed``:

    * *pending*: freshly created, may have callbacks attached;
    * *triggered*: :meth:`succeed` or :meth:`fail` has been called and the
      event sits in the simulation queue;
    * *processed*: the engine has popped the event and run its callbacks.
    """

    def __init__(self, sim: "Simulation") -> None:  # noqa: F821
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure value was retrieved or handled, used to
        #: surface unhandled simulation-time exceptions.
        self._defused = False

    # -- state predicates ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the engine has already run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event.ok:
            self.succeed(event.value)
        else:
            event._defused = True
            self.fail(event.value)

    # -- composition -----------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=self.delay)


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulations")
        #: Number of constituent events already *processed* successfully.
        self._count = 0
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            event: event.value
            for event in self.events
            if event.processed and event.ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any constituent event has been processed.

    An ``AnyOf`` over zero events fires immediately (vacuous truth
    mirrors :class:`AllOf`'s behaviour for symmetry with SimPy).
    """

    def _satisfied(self) -> bool:
        return self._count >= 1 or not self.events


class AllOf(_Condition):
    """Fires once every constituent event has been processed."""

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)

class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given by the interrupter.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Process(Event):
    """An event representing a running generator-based process."""

    def __init__(self, sim: "Simulation", generator: Generator) -> None:  # noqa: F821
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        #: The event this process is currently waiting on, if any.
        self._target: Event = None
        # Kick off the process via an immediately-scheduled init event.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._enqueue(init)
        self._target = init

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process while it waits detaches it from its target event.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already finished")
        if self.sim.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.sim.schedule_interrupt(event)

    # -- engine callback ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        self.sim._active_process = self
        # If we were interrupted while waiting, forget the original target
        # (its eventual firing must no longer resume us).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        while True:
            try:
                if event.ok:
                    target = self._generator.send(event.value)
                else:
                    event._defused = True
                    target = self._generator.throw(event.value)
            except StopIteration as stop:
                self._target = None
                self.sim._active_process = None
                self.succeed(getattr(stop, "value", None))
                return
            except Interrupt as exc:
                # The generator re-raised an interrupt it did not handle.
                self._target = None
                self.sim._active_process = None
                self._defused = True
                self.fail(exc)
                return
            except BaseException as exc:
                self._target = None
                self.sim._active_process = None
                self.fail(exc)
                return
            if not isinstance(target, Event):
                exc = RuntimeError(
                    f"process yielded a non-event: {target!r}"
                )
                event = Event(self.sim)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if target.sim is not self.sim:
                exc = RuntimeError("process yielded an event from another simulation")
                event = Event(self.sim)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if target.processed:
                # Already fired: resume immediately with its value.
                event = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            break
        self.sim._active_process = None

#: Default event priority.  Lower fires first among same-time events.
NORMAL = 1
#: Priority for urgent events (e.g. interrupts).
URGENT = 0


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulation.run` early."""

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that stops the simulation with the event value."""
        if event.ok:
            raise cls(event.value)
        raise event.value


class EmptySchedule(Exception):
    """Raised when the event queue has run dry."""


class Simulation:
    """A single, self-contained discrete-event simulation.

    Parameters
    ----------
    start:
        Initial value of the simulation clock (default 0).

    Examples
    --------
    >>> sim = Simulation()
    >>> def proc(sim):
    ...     yield sim.timeout(3)
    ...     return "done"
    >>> p = sim.process(proc(sim))
    >>> sim.run()
    >>> sim.now
    3.0
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this simulation."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert a triggered event into the queue (engine-internal)."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule_interrupt(self, event: Event) -> None:
        """Queue ``event`` ahead of same-time normal events."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now, URGENT, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise EmptySchedule()
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event.value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` (a time, an :class:`Event`, or queue-empty).

        Parameters
        ----------
        until:
            ``None`` runs until no events remain.  A number runs until the
            clock reaches that time.  An :class:`Event` runs until that
            event is processed and returns its value.
        """
        stop_value: Any = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed: nothing to run.
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} lies in the past (now={self._now})"
                    )
                marker = Event(self)
                marker._ok = True
                marker._value = None
                marker.callbacks.append(StopSimulation.callback)
                self._seq += 1
                heapq.heappush(self._queue, (deadline, URGENT, self._seq, marker))
        try:
            while True:
                self.step()
        except StopSimulation as stop:
            stop_value = stop.args[0] if stop.args else None
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError(
                    "simulation ran out of events before the awaited event fired"
                ) from None
        return stop_value
