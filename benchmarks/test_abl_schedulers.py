"""Ablation — scheduler support matters: CFQ vs NOOP vs Deadline.

The paper picks CFQ because it is "the only open source scheduler that
supports I/O prioritization".  This ablation quantifies that: running
the same Idle-class scrubber under NOOP and Deadline (which ignore
priorities) destroys the foreground, while CFQ's Idle class protects
it.
"""

import pytest

from conftest import run_once, show
from repro.core import Scrubber, SequentialScrub
from repro.disk import Drive
from repro.sched import (
    BlockDevice,
    CFQScheduler,
    DeadlineScheduler,
    NoopScheduler,
    PriorityClass,
)
from repro.sim import RandomStreams, Simulation
from repro.workloads import SequentialReader

HORIZON = 15.0


def run_one(ultrastar, scheduler, with_scrubber):
    sim = Simulation()
    device = BlockDevice(
        sim, Drive(ultrastar, cache_enabled=False), scheduler
    )
    SequentialReader(sim, device, RandomStreams(seed=4).get("fg")).start()
    scrubber = None
    if with_scrubber:
        scrubber = Scrubber(
            sim, device, SequentialScrub(), priority=PriorityClass.IDLE
        )
        scrubber.start()
    sim.run(until=HORIZON)
    return (
        device.log.bytes_completed("foreground") / HORIZON / 1e6,
        (scrubber.bytes_scrubbed / HORIZON / 1e6) if scrubber else 0.0,
    )


def measure(ultrastar):
    return {
        "baseline (no scrub)": run_one(ultrastar, CFQScheduler(), False),
        "CFQ + Idle scrubber": run_one(ultrastar, CFQScheduler(), True),
        "NOOP + scrubber": run_one(ultrastar, NoopScheduler(), True),
        "Deadline + scrubber": run_one(ultrastar, DeadlineScheduler(), True),
    }


def test_abl_scheduler_prioritisation(benchmark, ultrastar):
    results = run_once(benchmark, lambda: measure(ultrastar))
    benchmark.extra_info["mbps"] = {k: list(v) for k, v in results.items()}
    show(
        "Ablation: scheduler support for scrubbing",
        f"{'config':<22}{'foreground':>12}{'scrubber':>10}",
        [
            f"{k:<22}{fg:>12.2f}{s:>10.2f}"
            for k, (fg, s) in results.items()
        ],
    )
    baseline = results["baseline (no scrub)"][0]
    # CFQ's Idle class protects the foreground.
    assert results["CFQ + Idle scrubber"][0] > 0.9 * baseline
    # Priority-blind schedulers let a back-to-back scrubber flatten it.
    for label in ("NOOP + scrubber", "Deadline + scrubber"):
        assert results[label][0] < 0.6 * baseline, label
        assert results[label][1] > results["CFQ + Idle scrubber"][1], label
