"""Fig. 15 — Waiting variants: scrub throughput vs mean slowdown.

Paper: at any given mean-slowdown budget, picking one optimal fixed
request size beats both extremes (64 KB fixed is far below, 4 MB fixed
is matched only at large budgets) and — surprisingly — beats all the
adaptive schedules (exponential, linear), which collapse onto the
maximum-size fixed curve (footnote 5).
"""

import numpy as np
import pytest

from conftest import cached_idle, run_once, show
from repro.analysis.slowdown import (
    simulate_adaptive_waiting,
    simulate_fixed_waiting,
)
from repro.core.adaptive import ExponentialSchedule, LinearSchedule
from repro.core.optimizer import ScrubParameterOptimizer

DISK = "HPc6t8d0"
DURATION = 4 * 3600.0
THRESHOLDS = [0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1.024, 2.048, 4.096]
GOALS_MS = [0.25, 0.5, 1.0, 1.5, 2.0, 3.0]


def sweep_fixed(durations, size, service_model, total, span, runner):
    return runner.map(
        simulate_fixed_waiting,
        [
            dict(
                durations=durations, threshold=t, request_bytes=size,
                service_model=service_model, total_requests=total, span=span,
            )
            for t in THRESHOLDS
        ],
    )


def sweep_adaptive(durations, schedule, service_model, total, span, runner):
    return runner.map(
        simulate_adaptive_waiting,
        [
            dict(
                durations=durations, threshold=t, schedule=schedule,
                service_model=service_model, total_requests=total, span=span,
            )
            for t in THRESHOLDS
        ],
    )


def throughput_at_slowdown(results, goal):
    """Interpolate a (slowdown -> throughput) curve at ``goal``."""
    slowdowns = np.array([r.mean_slowdown for r in results])
    throughputs = np.array([r.throughput_mbps for r in results])
    order = np.argsort(slowdowns)
    if goal < slowdowns.min():
        return 0.0
    return float(np.interp(goal, slowdowns[order], throughputs[order]))


def measure(service_model, runner):
    trace, durations = cached_idle(DISK, DURATION)
    total, span = len(trace), trace.duration
    cap = (service_model.max_size_for_slowdown(0.0504) // 65536) * 65536

    curves = {
        "64KB fixed": sweep_fixed(
            durations, 65536, service_model, total, span, runner
        ),
        "4MB fixed": sweep_fixed(
            durations, 4 * 1024 * 1024, service_model, total, span, runner
        ),
        "exponential (a=2)": sweep_adaptive(
            durations, ExponentialSchedule(65536, 2.0, cap),
            service_model, total, span, runner,
        ),
        "linear (a=2,b=64KB)": sweep_adaptive(
            durations, LinearSchedule(65536, 2.0, 65536, cap),
            service_model, total, span, runner,
        ),
    }
    optimizer = ScrubParameterOptimizer(durations, total, span, service_model)
    optimal = {}
    for goal_ms in GOALS_MS:
        try:
            optimal[goal_ms] = optimizer.optimize(goal_ms / 1e3, runner=runner)
        except ValueError:
            optimal[goal_ms] = None
    return curves, optimal


def test_fig15_request_sizing(benchmark, service_model, sweep_runner):
    curves, optimal = run_once(
        benchmark, lambda: measure(service_model, sweep_runner)
    )
    rows = []
    table = {}
    for goal_ms in GOALS_MS:
        best = optimal[goal_ms]
        entries = {
            label: throughput_at_slowdown(results, goal_ms / 1e3)
            for label, results in curves.items()
        }
        best_txt = (
            f"optimal {best.throughput_mbps:6.1f} MB/s "
            f"({best.request_bytes // 1024} KB)"
            if best
            else "optimal: unattainable"
        )
        rows.append(
            f"goal {goal_ms:5.2f} ms:  "
            + "  ".join(f"{label}={mbps:6.1f}" for label, mbps in entries.items())
            + f"  {best_txt}"
        )
        table[goal_ms] = {
            **entries,
            "optimal": best.throughput_mbps if best else None,
            "optimal_size_kb": best.request_bytes // 1024 if best else None,
        }
    benchmark.extra_info["throughput_by_goal"] = table
    show("Fig. 15: throughput (MB/s) at mean-slowdown goals", "", rows)

    for goal_ms in GOALS_MS:
        best = optimal[goal_ms]
        if best is None:
            continue
        entry = table[goal_ms]
        # The optimal fixed size beats 64 KB fixed everywhere...
        assert best.throughput_mbps >= entry["64KB fixed"] - 0.5, goal_ms
        # ...and matches-or-beats every adaptive schedule (within the
        # interpolation noise of the threshold grid: the paper's claim
        # is "no adaptive approach outperforms the fixed approach").
        for label in ("exponential (a=2)", "linear (a=2,b=64KB)", "4MB fixed"):
            assert best.throughput_mbps >= 0.96 * entry[label], (goal_ms, label)
    # 64 KB fixed is far below the optimal at moderate budgets (the
    # paper's ~6x headline at 1-2 ms).
    assert optimal[1.0].throughput_mbps > 3 * table[1.0]["64KB fixed"]
    # Adaptive collapses onto the 4 MB fixed curve (footnote 5).
    for goal_ms in (1.0, 2.0, 3.0):
        entry = table[goal_ms]
        assert entry["exponential (a=2)"] == pytest.approx(
            entry["4MB fixed"], rel=0.2, abs=2.0
        ), goal_ms
