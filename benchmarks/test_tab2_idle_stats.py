"""Table II — idle interval duration analysis per trace.

Paper: Cello/MSR traces have idle-interval CoVs of 8–200 (heavy tails,
far from exponential), with MSRproj2 the extreme at 200.75; the TPC-C
traces are essentially exponential (CoV 0.86–0.88, mean 1.4–1.5 ms).
Absolute synthetic statistics drift from the inputs on finite windows
because of the heavy tails; the assertions check magnitude and
ordering rather than exact values (see EXPERIMENTS.md).
"""

import pytest

from conftest import cached_idle, run_once, show
from repro.stats import summarize_idle
from repro.traces import CATALOG

DISKS = [
    "MSRsrc11", "MSRusr1", "MSRproj2", "MSRprn1",
    "HPc6t8d0", "HPc6t5d1", "HPc6t5d0", "HPc3t3d0",
    "TPCdisk66", "TPCdisk88",
]
DURATION = 4 * 3600.0


def measure():
    rows = {}
    for name in DISKS:
        duration = 900.0 if CATALOG[name].profile.memoryless else DURATION
        trace, durations = cached_idle(name, duration)
        stats = summarize_idle(durations, span=trace.duration)
        spec = CATALOG[name]
        rows[name] = {
            "mean": stats.mean,
            "variance": stats.variance,
            "cov": stats.cov,
            "paper_mean": spec.paper_idle_mean,
            "paper_cov": spec.paper_idle_cov,
        }
    return rows


def test_tab2_idle_interval_stats(benchmark):
    rows = run_once(benchmark, measure)
    benchmark.extra_info["stats"] = rows
    show(
        "Table II: idle interval duration analysis",
        f"{'disk':<12}{'mean (s)':>10}{'CoV':>8}{'paper mean':>12}{'paper CoV':>10}",
        [
            f"{name:<12}{r['mean']:>10.4f}{r['cov']:>8.1f}"
            f"{r['paper_mean']:>12.4f}{r['paper_cov']:>10.1f}"
            for name, r in rows.items()
        ],
    )

    for name, r in rows.items():
        if name.startswith("TPC"):
            # Memoryless: CoV ~ 1, mean ~ 1.4 ms, both close to the paper.
            assert 0.7 < r["cov"] < 1.3, name
            assert r["mean"] == pytest.approx(r["paper_mean"], rel=0.3), name
        else:
            # Heavy-tailed: CoV far above exponential's 1.
            assert r["cov"] > 5.0, name
            # Mean within a factor ~4 of the paper (finite-window drift).
            assert 0.2 * r["paper_mean"] < r["mean"] < 4 * r["paper_mean"], name
    # proj2 is the CoV extreme among the MSR disks, as in the paper.
    msr = ["MSRsrc11", "MSRusr1", "MSRproj2", "MSRprn1"]
    assert rows["MSRproj2"]["cov"] == max(rows[n]["cov"] for n in msr)
    # src11's CoV exceeds usr1's (21.7 vs 8.7 in the paper).
    assert rows["MSRsrc11"]["cov"] > rows["MSRusr1"]["cov"]
