"""Fleet-campaign benchmark: drive-years/sec, resume and journal cost.

Writes ``BENCH_PR7.json`` next to the repo root.  Three rows:

* ``fleet_throughput`` — simulated drive-years per wall-clock second
  for a serial in-process campaign (the per-shard kernel's raw speed);
* ``fleet_resume`` — a fresh journalled run vs a full resume of the
  same campaign: the resume recomputes no shard (every one is a
  checkpoint hit; what remains is the merge + closed-form calibration)
  and must produce bit-identical metrics;
* ``fleet_journal_overhead`` — the same campaign with and without a
  journal: checkpointing must cost only a modest fraction of the run.

No hard gate fails this script except the bit-identity check — timing
rows are informational, following the BENCH_PR*.json convention.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fleet import (  # noqa: E402
    CampaignRunner,
    CampaignSpec,
    DriveClass,
    FleetSpec,
    ScrubPolicySpec,
)


def make_spec(groups: int) -> CampaignSpec:
    return CampaignSpec(
        fleet=FleetSpec(
            groups=groups,
            disks_per_group=8,
            mttr_hours=24.0,
            spare_delay_hours=4.0,
            classes=(
                DriveClass(mttf_hours=1.0e5, lse_burst_rate_per_hour=1e-4),
            ),
        ),
        policies=(
            ScrubPolicySpec(name="weekly", latent_window_hours=84.0),
            ScrubPolicySpec(
                name="staggered", algorithm="staggered",
                latent_window_hours=62.0,
            ),
        ),
        mission_years=10.0,
        seed=0,
        shards=16,
    )


def _run(spec, journal_dir=None):
    start = time.perf_counter()
    result = CampaignRunner(spec, journal_dir=journal_dir).run()
    return result, time.perf_counter() - start


def main() -> int:
    groups = 4000
    spec = make_spec(groups)
    rows = {}

    result, elapsed = _run(spec)
    drive_years = sum(p.drive_years for p in result.policies)
    rows["fleet_throughput"] = {
        "workload": (
            f"{groups} raid5 groups x 8 drives x 2 policies, "
            f"{spec.mission_years:g}y mission, serial"
        ),
        "drives": spec.fleet.drives,
        "simulated_drive_years": round(drive_years, 1),
        "wall_s": round(elapsed, 4),
        "drive_years_per_s": round(drive_years / elapsed, 1),
    }
    print(
        f"fleet_throughput: {drive_years:,.0f} drive-years in {elapsed:.2f}s "
        f"({drive_years / elapsed:,.0f} dy/s)"
    )

    identical = True
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "journal")
        fresh, fresh_s = _run(spec, journal_dir=journal)
        resumed, resume_s = _run(spec, journal_dir=journal)
        identical = fresh.metrics_dict() == resumed.metrics_dict()
        rows["fleet_resume"] = {
            "workload": "same campaign, journalled: fresh run vs full resume",
            "fresh_s": round(fresh_s, 4),
            "resume_s": round(resume_s, 4),
            "speedup": round(fresh_s / resume_s, 2),
            "shards_resumed": resumed.shards_resumed,
            "bit_identical": identical,
        }
        print(
            f"fleet_resume: fresh {fresh_s:.2f}s, resume {resume_s:.3f}s "
            f"({fresh_s / resume_s:.0f}x, {resumed.shards_resumed} shards "
            f"from checkpoints, identical={identical})"
        )

        rows["fleet_journal_overhead"] = {
            "workload": "journalled fresh run vs unjournalled run",
            "bare_s": round(elapsed, 4),
            "journalled_s": round(fresh_s, 4),
            "overhead_fraction": round(fresh_s / elapsed - 1.0, 4),
        }
        print(
            f"fleet_journal_overhead: bare {elapsed:.2f}s vs journalled "
            f"{fresh_s:.2f}s ({(fresh_s / elapsed - 1.0) * 100:+.1f}%)"
        )

    payload = {
        "python": platform.python_version(),
        "rows": rows,
    }
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_PR7.json",
    )
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")
    if not identical:
        print("FAIL: resumed campaign diverged from the fresh run")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
