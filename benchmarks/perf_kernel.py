"""Kernel microbenchmark: seed kernel vs the current fast-path kernel.

Runs a 1M-event workload through both the frozen seed kernel
(``legacy_kernel.py``) and the current ``repro.sim`` kernel and reports
per-phase and total speedups.  Three phases cover the kernel's real
usage profiles:

* ``deep_schedule_drain`` — a process pre-schedules a large batch of
  timeouts, then the engine drains them.  This is the trace-replay
  shape (:class:`repro.workloads.replay.TraceReplayer` schedules
  arrivals up front) and the phase where pausing the cyclic GC pays
  most: the collector otherwise rescans the live pending-event heap
  on every collection.
* ``fire_forget_churn`` — a process creates fire-and-forget timeouts
  (nobody ever reads their callbacks) around a yielded timeout, keeping
  the heap shallow.  Exercises lazy callback-list allocation and the
  inlined ``Timeout.__init__``.
* ``process_churn`` — batches of short-lived processes, each yielding
  a couple of timeouts.  Exercises the resume fast path and the
  single-waiter callback representation.

Timings use ``time.process_time`` (CPU time) with min-of-N interleaved
repetitions, so results are stable on shared/noisy machines.

Run directly (``PYTHONPATH=src python benchmarks/perf_kernel.py``) or
via ``benchmarks/run_perf.py``, which also writes ``BENCH_PR1.json``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import legacy_kernel  # noqa: E402

from repro import sim as current_kernel  # noqa: E402

#: Phase event budgets; they sum to the 1M-event headline workload.
PHASES = {
    "deep_schedule_drain": 600_000,
    "fire_forget_churn": 250_000,
    "process_churn": 150_000,
}


# -- workloads (kernel-agnostic: take the kernel module) ------------------


#: Deep-phase wave size: one trace-replay window's worth of
#: pre-scheduled arrivals (a multi-hour block trace holds a few
#: hundred thousand requests).
DEEP_WAVE = 300_000


def deep_schedule_drain(kernel, events: int) -> float:
    """Pre-schedule a replay window of timeouts, drain it, repeat."""
    sim = kernel.Simulation()
    timeout = sim.timeout
    wave = min(events, DEEP_WAVE)
    waves = max(1, events // wave)

    def producer(sim):
        for _ in range(waves):
            for i in range(wave - 1):
                timeout((i % 97) + 1.0)
            # Yield past the wave so the heap drains fully before the
            # next window is scheduled.
            yield sim.timeout(100.0)

    sim.process(producer(sim))
    sim.run()
    return sim.now


def fire_forget_churn(kernel, events: int) -> float:
    """Shallow-heap churn: three fire-and-forget timeouts per yield."""
    sim = kernel.Simulation()
    timeout = sim.timeout
    rounds = events // 4

    def churner(sim):
        for _ in range(rounds):
            timeout(0.5)
            timeout(1.0)
            timeout(1.5)
            yield timeout(2.0)

    sim.process(churner(sim))
    sim.run()
    return sim.now


def process_churn(kernel, events: int) -> float:
    """Batches of short-lived processes, two yields each."""
    sim = kernel.Simulation()
    # Each worker costs ~4 events (init + two timeouts + completion).
    workers = events // 4
    batch = 200

    def worker(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    def spawner(sim):
        spawned = 0
        while spawned < workers:
            for _ in range(min(batch, workers - spawned)):
                sim.process(worker(sim))
            spawned += batch
            yield sim.timeout(3.0)

    sim.process(spawner(sim))
    sim.run()
    return sim.now


WORKLOADS = {
    "deep_schedule_drain": deep_schedule_drain,
    "fire_forget_churn": fire_forget_churn,
    "process_churn": process_churn,
}


# -- measurement ----------------------------------------------------------


def _time_once(workload, kernel, events: int) -> float:
    start = time.process_time()
    workload(kernel, events)
    return time.process_time() - start


def run_kernel_benchmark(scale: float = 1.0, reps: int = 3) -> dict:
    """Measure every phase on both kernels; returns the result record.

    Repetitions interleave the two kernels (legacy, new, legacy, new,
    ...) and each side keeps its minimum, cancelling slow drift on a
    loaded machine.
    """
    phases = {}
    total_legacy = 0.0
    total_new = 0.0
    total_events = 0
    for name, budget in PHASES.items():
        events = max(1000, int(budget * scale))
        workload = WORKLOADS[name]
        # Warm both kernels once (allocator, code objects).
        _time_once(workload, legacy_kernel, 1000)
        _time_once(workload, current_kernel, 1000)
        legacy_best = float("inf")
        new_best = float("inf")
        for _ in range(reps):
            legacy_best = min(legacy_best, _time_once(workload, legacy_kernel, events))
            new_best = min(new_best, _time_once(workload, current_kernel, events))
        phases[name] = {
            "events": events,
            "legacy_s": round(legacy_best, 4),
            "new_s": round(new_best, 4),
            "speedup": round(legacy_best / new_best, 3),
        }
        total_legacy += legacy_best
        total_new += new_best
        total_events += events
    return {
        "workload": "timeout/process churn microbenchmark",
        "timer": "time.process_time (CPU), min of interleaved reps",
        "reps": reps,
        "events": total_events,
        "phases": phases,
        "total": {
            "legacy_s": round(total_legacy, 4),
            "new_s": round(total_new, 4),
            "speedup": round(total_legacy / total_new, 3),
        },
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="event-budget multiplier (use e.g. 0.1 for a quick check)",
    )
    parser.add_argument("--reps", type=int, default=3)
    args = parser.parse_args(argv)

    record = run_kernel_benchmark(scale=args.scale, reps=args.reps)
    print(f"{'phase':<22}{'events':>9}{'legacy':>9}{'new':>9}{'speedup':>9}")
    for name, row in record["phases"].items():
        print(
            f"{name:<22}{row['events']:>9,}{row['legacy_s']:>8.3f}s"
            f"{row['new_s']:>8.3f}s{row['speedup']:>8.2f}x"
        )
    total = record["total"]
    print(
        f"{'TOTAL':<22}{record['events']:>9,}{total['legacy_s']:>8.3f}s"
        f"{total['new_s']:>8.3f}s{total['speedup']:>8.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
