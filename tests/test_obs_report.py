"""Tests for the self-contained HTML run report (PR 8)."""

import json

import pytest

from repro.fleet import (
    CampaignRunner,
    CampaignSpec,
    DriveClass,
    FleetSpec,
    ScrubPolicySpec,
)
from repro.obs import CampaignMonitor, build_report, load_obs_dir, render_html


def _spec():
    return CampaignSpec(
        fleet=FleetSpec(
            groups=24,
            disks_per_group=4,
            classes=(
                DriveClass(mttf_hours=2.0e4, lse_burst_rate_per_hour=2e-4),
            ),
        ),
        policies=(
            ScrubPolicySpec(name="weekly", latent_window_hours=84.0),
        ),
        mission_years=4.0,
        seed=2,
        shards=3,
    )


@pytest.fixture
def obs_dir(tmp_path):
    obs = tmp_path / "obs"
    CampaignRunner(
        _spec(), monitor=CampaignMonitor(str(obs), interval=0.0)
    ).run()
    return obs


class TestLoad:
    def test_loads_all_surfaces(self, obs_dir):
        data = load_obs_dir(str(obs_dir))
        assert data["summary"]["state"] == "done"
        assert data["status"]["progress"] == 1.0
        assert any(e["event"] == "campaign_finished" for e in data["events"])

    def test_tolerates_torn_event_tail(self, obs_dir):
        with open(obs_dir / "events.jsonl", "a") as fh:
            fh.write('{"event": "campai')  # torn mid-crash line
        data = load_obs_dir(str(obs_dir))
        assert all("event" in e for e in data["events"])

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_obs_dir(str(tmp_path / "nope"))

    def test_status_only_is_enough(self, obs_dir):
        (obs_dir / "summary.json").unlink()
        data = load_obs_dir(str(obs_dir))
        assert data["summary"] is None
        assert data["status"]["state"] == "done"


class TestRender:
    def test_self_contained_html(self, obs_dir):
        html = render_html(load_obs_dir(str(obs_dir)))
        assert html.startswith("<!DOCTYPE html>")
        # Self-contained: no external scripts, stylesheets or images.
        assert "src=" not in html
        assert "href=" not in html
        assert "weekly" in html
        assert "drive-years" in html

    def test_report_shows_shard_histogram_and_phases(self, obs_dir):
        html = render_html(load_obs_dir(str(obs_dir)))
        assert "<svg" in html
        assert "policy weekly" in html

    def test_build_report_default_path(self, obs_dir):
        path = build_report(str(obs_dir))
        assert path == str(obs_dir / "report.html")
        text = (obs_dir / "report.html").read_text()
        assert "</html>" in text

    def test_build_report_custom_path(self, obs_dir, tmp_path):
        out = tmp_path / "campaign.html"
        assert build_report(str(obs_dir), out_path=str(out)) == str(out)
        assert out.exists()

    def test_degraded_run_is_flagged(self, obs_dir):
        status = json.loads((obs_dir / "status.json").read_text())
        status["state"] = "degraded"
        status["per_shard"][1]["state"] = "failed"
        status["per_shard"][1]["error"] = "worker died"
        summary = json.loads((obs_dir / "summary.json").read_text())
        summary["state"] = "degraded"
        html = render_html(
            {"summary": summary, "status": status, "events": []}
        )
        assert "degraded" in html
        assert "worker died" in html
