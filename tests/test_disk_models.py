"""Tests for the drive presets (repro.disk.models)."""

import pytest

from repro.disk import Drive, Interface
from repro.disk.models import (
    PRESETS,
    fujitsu_map3367np,
    fujitsu_max3073rc,
    hitachi_deskstar_7k1000,
    hitachi_ultrastar_15k450,
    wd_caviar_blue,
)


class TestPresets:
    def test_registry_contains_all_paper_drives(self):
        assert set(PRESETS) == {
            "ultrastar", "max3073rc", "map3367np", "caviar", "deskstar",
        }

    @pytest.mark.parametrize("factory,capacity_gb", [
        (hitachi_ultrastar_15k450, 300),
        (fujitsu_max3073rc, 73),
        (fujitsu_map3367np, 36),
        (wd_caviar_blue, 320),
        (hitachi_deskstar_7k1000, 1000),
    ])
    def test_capacities_match_datasheets(self, factory, capacity_gb):
        spec = factory()
        assert spec.capacity_bytes == pytest.approx(capacity_gb * 1e9, rel=0.05)
        drive = Drive(spec)
        assert drive.capacity_bytes == pytest.approx(
            spec.capacity_bytes, rel=0.02
        )

    def test_ata_drives_have_the_bug_scsi_do_not(self):
        for factory in (wd_caviar_blue, hitachi_deskstar_7k1000):
            spec = factory()
            assert spec.interface is Interface.ATA
            assert spec.ata_verify_cache_bug
        for factory in (
            hitachi_ultrastar_15k450, fujitsu_max3073rc, fujitsu_map3367np
        ):
            spec = factory()
            assert spec.interface is Interface.SCSI
            assert not spec.ata_verify_cache_bug

    def test_seek_specs_are_ordered(self):
        for factory in PRESETS.values():
            spec = factory()
            assert (
                0
                < spec.track_to_track_seek
                < spec.average_seek
                < spec.full_stroke_seek
            ), spec.name

    def test_media_rate_plausible(self):
        """Outer-track media rates land in the 60–200 MB/s band the
        paper-era drives actually had."""
        for factory in PRESETS.values():
            drive = Drive(factory())
            rate = drive.media_rate(0)
            assert 50e6 < rate < 250e6, factory().name

    def test_with_overrides_replaces_fields(self):
        spec = hitachi_ultrastar_15k450().with_overrides(rpm=10000, heads=2)
        assert spec.rpm == 10000
        assert spec.heads == 2
        # Untouched fields survive.
        assert spec.name == hitachi_ultrastar_15k450().name

    def test_rotation_period_property(self):
        assert hitachi_deskstar_7k1000().rotation_period == pytest.approx(
            60.0 / 7200
        )
