"""Batched array-cursor replay vs the legacy record feed: bit-identity,
chunked streaming, stop()/error parity, baseline memoization, and the
mean_slowdown_vs comparison guards."""

import numpy as np
import pytest

from repro.analysis.replay_cdf import (
    ReplayResult,
    clear_baseline_memo,
    replay_baseline,
    replay_slowdown_task,
    replay_with_scrubber,
)
from repro.disk import Drive, hitachi_ultrastar_15k450
from repro.parallel import ResultCache
from repro.sched import BlockDevice, CFQScheduler
from repro.sim import Simulation
from repro.telemetry import Recorder
from repro.traces import Trace, generate_trace
from repro.workloads.replay import TraceReplayer

HORIZON = 15.0


@pytest.fixture(scope="module")
def trace():
    return generate_trace("MSRsrc11", duration=60.0, seed=11)


def _replay(trace_or_records, telemetry=None, until=HORIZON, **kwargs):
    sim = Simulation(telemetry=telemetry) if telemetry is not None else Simulation()
    device = BlockDevice(
        sim, Drive(hitachi_ultrastar_15k450()), CFQScheduler()
    )
    replayer = TraceReplayer(sim, device, trace_or_records, **kwargs)
    replayer.start()
    sim.run(until=until)
    return {
        "response_times": device.log.response_times("foreground"),
        "requests": device.log.count("foreground"),
        "submitted": replayer.submitted,
        "now": sim.now,
    }


def _assert_same(a, b):
    assert np.array_equal(a["response_times"], b["response_times"])
    assert a["requests"] == b["requests"]
    assert a["submitted"] == b["submitted"]
    assert a["now"] == b["now"]


class TestFeedDeterminism:
    def test_arrays_match_records_feed(self, trace):
        _assert_same(_replay(trace), _replay(trace.records()))

    def test_arrays_match_records_feed_under_telemetry(self, trace):
        rec_a, rec_b = Recorder(wall_time=False), Recorder(wall_time=False)
        a = _replay(trace, telemetry=rec_a)
        b = _replay(trace.records(), telemetry=rec_b)
        _assert_same(a, b)
        assert rec_a.export() == rec_b.export()

    def test_full_trace_drains_identically(self, trace):
        _assert_same(
            _replay(trace, until=trace.duration + 5.0),
            _replay(trace.records(), until=trace.duration + 5.0),
        )

    def test_empty_trace(self):
        empty = Trace(
            np.zeros(0), np.zeros(0, int), np.ones(0, int), np.zeros(0, bool)
        )
        result = _replay(empty)
        assert result["submitted"] == 0
        assert result["requests"] == 0


class TestChunkedReplay:
    def test_chunk_sequence_matches_whole_trace(self, trace):
        third = len(trace) // 3
        chunks = [
            Trace(
                trace.times[a:b],
                trace.lbns[a:b],
                trace.sectors[a:b],
                trace.is_write[a:b],
                name=trace.name,
                capacity_sectors=trace.capacity_sectors,
            )
            for a, b in ((0, third), (third, 2 * third), (2 * third, len(trace)))
        ]
        _assert_same(_replay(iter(chunks)), _replay(trace))

    def test_unsorted_chunk_sequence_rejected(self, trace):
        half = len(trace) // 2
        first = Trace(
            trace.times[:half], trace.lbns[:half],
            trace.sectors[:half], trace.is_write[:half],
        )
        second = Trace(
            trace.times[half:], trace.lbns[half:],
            trace.sectors[half:], trace.is_write[half:],
        )
        with pytest.raises(ValueError, match="time-sorted"):
            _replay(iter([second, first]), until=trace.duration + 5.0)


class TestCursorParity:
    def _tiny(self, lbn=100):
        return Trace([0.0, 0.5, 1.0], [lbn, lbn, lbn], [8, 8, 8],
                     [False, True, False])

    def test_stop_mid_replay_matches_records_feed(self, trace):
        def run(source):
            sim = Simulation()
            device = BlockDevice(
                sim, Drive(hitachi_ultrastar_15k450()), CFQScheduler()
            )
            replayer = TraceReplayer(sim, device, source)
            replayer.start()
            sim.run(until=5.0)
            replayer.stop()
            sim.run(until=HORIZON)
            return {
                "response_times": device.log.response_times("foreground"),
                "requests": device.log.count("foreground"),
                "submitted": replayer.submitted,
                "now": sim.now,
            }

        _assert_same(run(trace), run(trace.records()))

    def test_stop_before_start_matches_records_feed(self, trace):
        def run(source):
            sim = Simulation()
            device = BlockDevice(
                sim, Drive(hitachi_ultrastar_15k450()), CFQScheduler()
            )
            replayer = TraceReplayer(sim, device, source)
            replayer.start()
            replayer.stop()  # before the init event ever fires
            sim.run(until=1.0)
            return replayer.submitted

        assert run(trace) == run(trace.records()) == 0

    def test_oversized_lbn_error_parity(self):
        bad = Trace([0.0, 1.0], [0, 10**12], [8, 8], [False, False])

        def run(source):
            sim = Simulation()
            device = BlockDevice(
                sim, Drive(hitachi_ultrastar_15k450()), CFQScheduler()
            )
            replayer = TraceReplayer(sim, device, source, wrap_lbn=False)
            replayer.start()
            with pytest.raises(ValueError) as excinfo:
                sim.run(until=10.0)
            return str(excinfo.value), replayer.submitted

        assert run(bad) == run(bad.records())
        assert "exceeds device size" in run(bad)[0]


class TestBaselineMemo:
    def test_memo_serves_repeat_baselines(self, trace, monkeypatch):
        clear_baseline_memo()
        spec = hitachi_ultrastar_15k450()
        first = replay_baseline(trace, spec, horizon=HORIZON)

        import repro.analysis.replay_cdf as mod

        def _no_sim(*args, **kwargs):
            raise AssertionError("memoized baseline must not re-simulate")

        monkeypatch.setattr(mod, "replay_with_scrubber", _no_sim)
        again = replay_baseline(trace, spec, horizon=HORIZON)
        assert again is first
        clear_baseline_memo()

    def test_memo_keyed_on_trace_content(self, trace):
        clear_baseline_memo()
        spec = hitachi_ultrastar_15k450()
        other = generate_trace("MSRsrc11", duration=60.0, seed=12)
        a = replay_baseline(trace, spec, horizon=HORIZON)
        b = replay_baseline(other, spec, horizon=HORIZON)
        assert a.trace_digest != b.trace_digest
        clear_baseline_memo()

    def test_on_disk_cache_round_trip(self, trace, tmp_path):
        clear_baseline_memo()
        spec = hitachi_ultrastar_15k450()
        cache = ResultCache(str(tmp_path))
        first = replay_baseline(
            trace, spec, horizon=HORIZON, result_cache=cache
        )
        clear_baseline_memo()  # force the disk path
        again = replay_baseline(
            trace, spec, horizon=HORIZON, result_cache=cache
        )
        assert cache.hits == 1
        assert np.array_equal(
            again.fg_response_times, first.fg_response_times
        )
        clear_baseline_memo()

    def test_slowdown_task_feeds_are_identical(self, trace):
        clear_baseline_memo()
        kwargs = dict(
            waiting={"threshold": 0.1, "request_bytes": 64 * 1024},
            horizon=HORIZON,
        )
        new = replay_slowdown_task(trace, **kwargs)
        clear_baseline_memo()
        legacy = replay_slowdown_task(
            trace, feed="records", baseline_memo=False, **kwargs
        )
        assert new["mean_slowdown"] == legacy["mean_slowdown"]
        assert np.array_equal(
            new["result"].fg_response_times,
            legacy["result"].fg_response_times,
        )
        clear_baseline_memo()


class TestMeanSlowdownGuards:
    def _result(self, digest="d1", horizon=HORIZON, n=100):
        return ReplayResult(
            horizon=horizon,
            fg_response_times=np.linspace(0.001, 0.01, n),
            fg_requests=n,
            scrub_bytes=0,
            scrub_requests=0,
            trace_digest=digest,
        )

    def test_different_traces_rejected(self):
        with pytest.raises(ValueError, match="different traces"):
            self._result("aaaa").mean_slowdown_vs(self._result("bbbb"))

    def test_different_horizons_rejected(self):
        with pytest.raises(ValueError, match="different horizons"):
            self._result(horizon=1.0).mean_slowdown_vs(
                self._result(horizon=2.0)
            )

    def test_diverging_counts_rejected(self):
        with pytest.raises(ValueError, match="diverge too far"):
            self._result(n=100).mean_slowdown_vs(self._result(n=10))

    def test_empty_comparison_rejected(self):
        with pytest.raises(ValueError, match="no common completed"):
            self._result(n=0).mean_slowdown_vs(self._result(n=0))

    def test_unknown_digest_is_tolerated(self):
        # Old pickled results predate the digest; positional compare
        # still works when either side lacks one.
        legacy = self._result(digest=None)
        assert self._result().mean_slowdown_vs(legacy) == pytest.approx(0.0)

    def test_plausible_tail_is_tolerated(self):
        slowdown = self._result(n=100).mean_slowdown_vs(self._result(n=90))
        assert isinstance(slowdown, float)

    def test_feed_validation(self, trace):
        with pytest.raises(ValueError, match="feed"):
            replay_with_scrubber(
                trace, hitachi_ultrastar_15k450(), horizon=1.0, feed="turbo"
            )
