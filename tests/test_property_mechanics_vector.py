"""Property-based tests: vectorised disk mechanics vs the scalar path.

The vector kernel's service-time computation
(:meth:`SeekModel.times`, :meth:`RotationModel.angles_at` /
``latencies_to`` / ``transfer_times``, :meth:`DiskGeometry.locate_batch`
/ ``angles_of_batch``) must equal the scalar reference methods
**element-wise and bit-for-bit** across random geometries, request
sizes and zone layouts — the differential oracle's kernel-backend axis
depends on it.

Runs under hypothesis when available (the container bakes it in); when
it is not, each property falls back to a seeded-random sweep over the
same input space, so the suite loses example diversity but never
coverage.
"""

import functools

import numpy as np

from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.mechanics import RotationModel, SeekModel

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the container ships hypothesis
    HAVE_HYPOTHESIS = False

_FALLBACK_EXAMPLES = 60


def _build(heads, zone_params, track_skew, rpm, seek_fracs):
    """Geometry + mechanics from drawn primitives.

    ``seek_fracs`` are two fractions in (0, 1] that place track-to-track
    and average seek below the full stroke, keeping ``from_specs``'s
    ``0 < t2t <= avg <= full`` ordering valid by construction.
    """
    geometry = DiskGeometry(
        heads, [Zone(c, spt) for c, spt in zone_params], track_skew
    )
    full = 0.015
    f1, f2 = sorted(seek_fracs)
    # cylinders >= 4 keeps the three fit points distinct (at 3 the
    # 1-cylinder and one-third-stroke points coincide: singular fit).
    seek = SeekModel.from_specs(
        max(1e-4, f1 * full), max(2e-4, f2 * full), full,
        max(4, geometry.cylinders),
    )
    return geometry, seek, RotationModel(rpm)


def _drawn_case(rng):
    heads = int(rng.integers(1, 9))
    zones = [
        (int(rng.integers(1, 40)), int(rng.integers(8, 600)))
        for _ in range(int(rng.integers(1, 7)))
    ]
    track_skew = round(float(rng.uniform(0.0, 0.999)), 6)
    rpm = float(rng.choice([3600.0, 5400.0, 7200.0, 10000.0, 15000.0]))
    seek_fracs = (float(rng.uniform(0.005, 1.0)), float(rng.uniform(0.005, 1.0)))
    return heads, zones, track_skew, rpm, seek_fracs


def geometry_property(test):
    """Drive ``test(heads=..., zones=..., ...)`` with hypothesis or seeded
    random draws over the same space."""
    if HAVE_HYPOTHESIS:
        zone_strategy = st.lists(
            st.tuples(st.integers(1, 40), st.integers(8, 600)),
            min_size=1,
            max_size=6,
        )
        return settings(max_examples=80, deadline=None)(
            given(
                heads=st.integers(1, 8),
                zones=zone_strategy,
                track_skew=st.floats(0.0, 0.999, allow_nan=False),
                rpm=st.sampled_from([3600.0, 5400.0, 7200.0, 10000.0, 15000.0]),
                seek_fracs=st.tuples(
                    st.floats(0.005, 1.0, allow_nan=False),
                    st.floats(0.005, 1.0, allow_nan=False),
                ),
            )(test)
        )

    @functools.wraps(test)
    def fallback():
        rng = np.random.default_rng(20120625)  # DSN 2012
        for _ in range(_FALLBACK_EXAMPLES):
            heads, zones, track_skew, rpm, seek_fracs = _drawn_case(rng)
            test(
                heads=heads, zones=zones, track_skew=track_skew, rpm=rpm,
                seek_fracs=seek_fracs,
            )

    return fallback


@geometry_property
def test_locate_batch_matches_scalar(heads, zones, track_skew, rpm, seek_fracs):
    geometry, _, _ = _build(heads, zones, track_skew, rpm, seek_fracs)
    rng = np.random.default_rng(7)
    lbns = rng.integers(0, geometry.total_sectors, size=64)
    cyl, head, sector, spt, track = geometry.locate_batch(lbns)
    for i, lbn in enumerate(lbns):
        loc = geometry.locate(int(lbn))
        assert (cyl[i], head[i], sector[i]) == (
            loc.cylinder, loc.head, loc.sector
        )
        assert spt[i] == geometry.zones[geometry.zone_of_lbn(int(lbn))].sectors_per_track
        angle = geometry.angles_of_batch(
            sector[i : i + 1], spt[i : i + 1], track[i : i + 1]
        )[0]
        assert angle == geometry.angle_of(loc)


@geometry_property
def test_seek_times_match_scalar(heads, zones, track_skew, rpm, seek_fracs):
    _, seek, _ = _build(heads, zones, track_skew, rpm, seek_fracs)
    distances = np.arange(0, seek.cylinders, max(1, seek.cylinders // 50))
    batch = seek.times(distances)
    assert batch.dtype == np.float64
    for i, d in enumerate(distances):
        assert batch[i] == seek.time(int(d)), f"d={d}"


@geometry_property
def test_rotation_batch_matches_scalar(heads, zones, track_skew, rpm, seek_fracs):
    geometry, _, rotation = _build(heads, zones, track_skew, rpm, seek_fracs)
    rng = np.random.default_rng(11)
    times = rng.uniform(0.0, 50.0, size=48)
    targets = rng.uniform(0.0, 1.0, size=48)
    spt = np.array(
        [z.sectors_per_track for z in geometry.zones], dtype=np.int64
    )
    sectors = (rng.integers(0, 10_000, size=len(spt)) % (spt + 1)).astype(
        np.int64
    )
    angles = rotation.angles_at(times)
    latencies = rotation.latencies_to(targets, times)
    transfers = rotation.transfer_times(sectors, spt)
    for i in range(len(times)):
        assert angles[i] == rotation.angle_at(float(times[i]))
        assert latencies[i] == rotation.latency_to(
            float(targets[i]), float(times[i])
        )
    for j in range(len(spt)):
        assert transfers[j] == rotation.transfer_time(
            int(sectors[j]), int(spt[j])
        )
