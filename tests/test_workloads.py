"""Tests for synthetic workloads and the trace replayer (repro.workloads)."""

from dataclasses import dataclass

import pytest

from repro.disk import Drive, hitachi_ultrastar_15k450
from repro.sched import BlockDevice, CFQScheduler, NoopScheduler
from repro.sim import RandomStreams, Simulation
from repro.workloads import RandomReader, SequentialReader, TraceReplayer


@dataclass
class FakeRecord:
    time: float
    lbn: int
    sectors: int
    is_write: bool


def make_stack(cache=False):
    sim = Simulation()
    device = BlockDevice(
        sim, Drive(hitachi_ultrastar_15k450(), cache_enabled=cache), NoopScheduler()
    )
    return sim, device, RandomStreams(seed=7)


class TestSequentialReader:
    def test_reads_whole_chunks_sequentially(self):
        sim, device, streams = make_stack()
        workload = SequentialReader(
            sim, device, streams.get("fg"), chunk_bytes=256 * 1024,
            request_bytes=64 * 1024, think_mean=0.0,
        )
        workload.start()
        sim.run(until=0.5)
        requests = device.log.requests("foreground")
        assert len(requests) >= 8
        # Within a chunk, LBNs advance by exactly the request size.
        chunk = requests[:4]
        deltas = {
            b.command.lbn - a.command.lbn for a, b in zip(chunk, chunk[1:])
        }
        assert deltas == {128}

    def test_chunks_start_at_random_locations(self):
        sim, device, streams = make_stack()
        workload = SequentialReader(
            sim, device, streams.get("fg"), chunk_bytes=128 * 1024,
            think_mean=0.0,
        )
        workload.start()
        sim.run(until=1.0)
        starts = [
            r.command.lbn
            for r in device.log.requests("foreground")[::2]  # chunk = 2 reqs
        ]
        assert len(set(starts)) > 1

    def test_throughput_matches_paper_ballpark(self):
        """Cache-off sequential 64 KB reads with 100 ms chunk thinks land
        near the paper's 12.1 MB/s foreground-alone figure."""
        sim, device, streams = make_stack(cache=False)
        workload = SequentialReader(sim, device, streams.get("fg"))
        workload.start()
        sim.run(until=30.0)
        mbps = device.log.bytes_completed("foreground") / 30.0 / 1e6
        assert 9.0 < mbps < 16.0

    def test_stop_halts_submissions(self):
        sim, device, streams = make_stack()
        workload = SequentialReader(
            sim, device, streams.get("fg"), think_mean=0.0
        )
        workload.start()
        sim.run(until=0.2)
        workload.stop()
        sim.run(until=0.4)
        count = workload.requests_issued
        sim.run(until=0.6)
        assert workload.requests_issued == count

    def test_think_scope_request_slows_workload(self):
        results = {}
        for scope in ("chunk", "request"):
            sim, device, streams = make_stack()
            workload = SequentialReader(
                sim, device, streams.get("fg"), think_scope=scope,
                think_mean=0.05,
            )
            workload.start()
            sim.run(until=10.0)
            results[scope] = device.log.bytes_completed("foreground")
        assert results["request"] < results["chunk"] / 3

    def test_invalid_parameters(self):
        sim, device, streams = make_stack()
        with pytest.raises(ValueError):
            SequentialReader(sim, device, streams.get("fg"), think_scope="bad")
        with pytest.raises(ValueError):
            SequentialReader(
                sim, device, streams.get("fg"), chunk_bytes=100_000
            )
        with pytest.raises(ValueError):
            SequentialReader(
                sim, device, streams.get("fg"), request_bytes=1000
            )
        with pytest.raises(ValueError):
            SequentialReader(sim, device, streams.get("fg"), think_mean=-1)

    def test_double_start_rejected(self):
        sim, device, streams = make_stack()
        workload = SequentialReader(sim, device, streams.get("fg"))
        workload.start()
        with pytest.raises(RuntimeError):
            workload.start()


class TestRandomReader:
    def test_locations_are_scattered(self):
        sim, device, streams = make_stack()
        workload = RandomReader(
            sim, device, streams.get("fg"), think_mean=0.001
        )
        workload.start()
        sim.run(until=2.0)
        lbns = [r.command.lbn for r in device.log.requests("foreground")]
        assert len(lbns) > 20
        spread = max(lbns) - min(lbns)
        assert spread > device.drive.total_sectors / 10

    def test_random_slower_than_sequential(self):
        sim_a, dev_a, streams_a = make_stack()
        SequentialReader(
            sim_a, dev_a, streams_a.get("fg"), think_mean=0.0
        ).start()
        sim_a.run(until=5.0)

        sim_b, dev_b, streams_b = make_stack()
        RandomReader(sim_b, dev_b, streams_b.get("fg"), think_mean=0.0).start()
        sim_b.run(until=5.0)

        assert dev_b.log.bytes_completed() < dev_a.log.bytes_completed()


class TestTraceReplayer:
    def test_preserves_arrival_times(self):
        sim, device, _ = make_stack()
        records = [
            FakeRecord(time=10.0, lbn=0, sectors=8, is_write=False),
            FakeRecord(time=10.5, lbn=1000, sectors=8, is_write=False),
            FakeRecord(time=12.0, lbn=2000, sectors=8, is_write=True),
        ]
        replayer = TraceReplayer(sim, device, records)
        replayer.start()
        sim.run()
        requests = device.log.requests("foreground")
        # Arrival spacing is preserved relative to the first record.
        submits = sorted(r.submit_time for r in requests)
        assert submits[1] - submits[0] == pytest.approx(0.5)
        assert submits[2] - submits[0] == pytest.approx(2.0)

    def test_time_scale_compresses(self):
        sim, device, _ = make_stack()
        records = [
            FakeRecord(time=0.0, lbn=0, sectors=8, is_write=False),
            FakeRecord(time=10.0, lbn=1000, sectors=8, is_write=False),
        ]
        TraceReplayer(sim, device, records, time_scale=0.1).start()
        sim.run()
        submits = sorted(r.submit_time for r in device.log.requests())
        assert submits[1] - submits[0] == pytest.approx(1.0)

    def test_records_sorted_if_unordered(self):
        sim, device, _ = make_stack()
        records = [
            FakeRecord(time=5.0, lbn=1000, sectors=8, is_write=False),
            FakeRecord(time=1.0, lbn=0, sectors=8, is_write=False),
        ]
        TraceReplayer(sim, device, records).start()
        sim.run()
        assert device.log.count() == 2

    def test_lbn_wrapping(self):
        sim, device, _ = make_stack()
        huge = device.drive.total_sectors * 2
        records = [FakeRecord(time=0.0, lbn=huge, sectors=8, is_write=False)]
        TraceReplayer(sim, device, records).start()
        sim.run()
        assert device.log.count() == 1

    def test_lbn_overflow_without_wrap_fails(self):
        sim, device, _ = make_stack()
        huge = device.drive.total_sectors * 2
        records = [FakeRecord(time=0.0, lbn=huge, sectors=8, is_write=False)]
        TraceReplayer(sim, device, records, wrap_lbn=False).start()
        with pytest.raises(ValueError):
            sim.run()

    def test_write_records_become_writes(self):
        sim, device, _ = make_stack()
        records = [FakeRecord(time=0.0, lbn=0, sectors=8, is_write=True)]
        TraceReplayer(sim, device, records).start()
        sim.run()
        from repro.disk.commands import Opcode

        assert device.log.requests()[0].command.opcode is Opcode.WRITE

    def test_open_loop_under_cfq(self):
        sim = Simulation()
        device = BlockDevice(
            sim,
            Drive(hitachi_ultrastar_15k450(), cache_enabled=False),
            CFQScheduler(),
        )
        records = [
            FakeRecord(time=0.001 * i, lbn=8 * i, sectors=8, is_write=False)
            for i in range(100)
        ]
        TraceReplayer(sim, device, records).start()
        sim.run()
        assert device.log.count() == 100
