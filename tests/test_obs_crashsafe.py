"""Crash-safety regression tests for the observability writers (PR 8).

A SIGKILL can land between any two instructions, so every durable
output (exported JSONL logs, ``status.json``) goes temp-file +
``os.replace``: the path either holds the previous complete version or
the new complete version, never a torn one.  These tests actually
SIGKILL child processes mid-write and inspect what survives.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def _run_child(code: str, ready_token: str) -> subprocess.Popen:
    """Start a child, wait for it to print ``ready_token``, return it."""
    child = subprocess.Popen(
        [sys.executable, "-c", textwrap.dedent(code)],
        env=dict(os.environ, PYTHONPATH=SRC),
        stdout=subprocess.PIPE,
        text=True,
    )
    for line in child.stdout:
        if ready_token in line:
            return child
    raise AssertionError("child exited before becoming ready")


class TestWriteJsonl:
    def test_atomic_on_path_destination(self, tmp_path):
        from repro.telemetry.export import write_jsonl

        dest = tmp_path / "log.jsonl"
        assert write_jsonl(str(dest), [{"a": 1}, {"b": 2}]) == 2
        assert [p.name for p in tmp_path.iterdir()] == ["log.jsonl"]
        lines = dest.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}, {"b": 2}]

    def test_failing_record_leaves_previous_file(self, tmp_path):
        from repro.telemetry.export import write_jsonl

        dest = tmp_path / "log.jsonl"
        write_jsonl(str(dest), [{"version": 1}])

        def poisoned():
            yield {"version": 2}
            raise RuntimeError("source died mid-export")

        try:
            write_jsonl(str(dest), poisoned())
        except RuntimeError:
            pass
        assert json.loads(dest.read_text()) == {"version": 1}
        # The temp file was cleaned up on the error path.
        assert [p.name for p in tmp_path.iterdir()] == ["log.jsonl"]

    def test_sigkill_mid_export_never_tears_the_file(self, tmp_path):
        dest = tmp_path / "log.jsonl"
        dest.write_text('{"version": 1}\n')
        child = _run_child(
            f"""
            import itertools, sys
            from repro.telemetry.export import write_jsonl

            def records():
                for index in itertools.count():
                    if index == 3:
                        print("READY", flush=True)
                    yield {{"index": index, "payload": "x" * 4096}}

            write_jsonl({str(dest)!r}, records())
            """,
            ready_token="READY",
        )
        os.kill(child.pid, signal.SIGKILL)
        child.wait()
        # The infinite export can never have completed, so the rename
        # never happened: the previous complete file must be intact.
        assert dest.read_text() == '{"version": 1}\n'

    def test_file_object_destination_still_streams(self, tmp_path):
        import io

        from repro.telemetry.export import write_jsonl

        buffer = io.StringIO()
        assert write_jsonl(buffer, [{"a": 1}]) == 1
        assert json.loads(buffer.getvalue()) == {"a": 1}


class TestStatusJson:
    def test_sigkill_mid_status_churn_leaves_valid_json(self, tmp_path):
        obs = tmp_path / "obs"
        child = _run_child(
            f"""
            import itertools
            from repro.obs import CampaignMonitor

            monitor = CampaignMonitor({str(obs)!r}, interval=0.0)
            monitor.campaign_started(
                digest="d" * 64,
                shard_ranges=[(0, 10), (10, 10)],
                policy_names=["weekly"],
                workers=2,
                mission_years=5.0,
                disks_per_group=4,
            )
            print("READY", flush=True)
            for index in itertools.count():
                monitor.shard_heartbeat(
                    0, 1, {{"done": index, "total": 10 ** 9}}
                )
            """,
            ready_token="READY",
        )
        # Let it churn through status rewrites, then kill mid-flight.
        child.stdout.read(0)
        os.kill(child.pid, signal.SIGKILL)
        child.wait()
        status = json.loads((obs / "status.json").read_text())
        assert status["version"] >= 1
        assert status["shards"]["total"] == 2
        # Torn events (if the kill split a line) must not break readers.
        from repro.obs import load_obs_dir

        data = load_obs_dir(str(obs))
        assert all("event" in e for e in data["events"])
