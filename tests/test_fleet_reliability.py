"""Closed-form reliability model, and its agreement with the fleet MC.

``group_reliability`` and ``fleet_shard_task`` implement the *same*
renewal-cycle model — one analytically, one by simulation — so beyond
sanity and monotonicity checks on the closed form, the load-bearing
test here is calibration: on a homogeneous fleet the Monte-Carlo MTTDL
estimate's 95% confidence interval must cover the closed-form value,
and the mission loss probability must land inside its Wilson interval.

The paper's qualitative claim rides on top: staggered scrubbing visits
sectors sooner, shrinking the latent window (MLET), which lengthens
MTTDL — and both the schedule-derived windows and the fleet estimates
must order that way.
"""

import math

import pytest

from repro.fleet import (
    CampaignRunner,
    CampaignSpec,
    DriveClass,
    FleetSpec,
    ScrubPolicySpec,
    resolve_latent_windows,
)
from repro.raid import (
    HOURS_PER_YEAR,
    group_reliability,
    lse_exposure_probability,
)


class TestClosedForm:
    def test_unprotected_group_is_mttf_over_disks(self):
        rel = group_reliability(
            disks=8, mttf_hours=1e5, mttr_hours=24.0,
            mission_hours=10 * HOURS_PER_YEAR, redundancy=0,
        )
        assert rel.mttdl_hours == pytest.approx(1e5 / 8)

    def test_redundancy_buys_orders_of_magnitude(self):
        bare = group_reliability(
            disks=8, mttf_hours=1e5, mttr_hours=24.0,
            mission_hours=10 * HOURS_PER_YEAR, redundancy=0,
        )
        raid = group_reliability(
            disks=8, mttf_hours=1e5, mttr_hours=24.0,
            mission_hours=10 * HOURS_PER_YEAR, redundancy=1,
        )
        assert raid.mttdl_hours > 50 * bare.mttdl_hours

    @pytest.mark.parametrize(
        "worse",
        [
            {"mttr_hours": 96.0},
            {"disks": 16},
            {"mttf_hours": 2e4},
            {"spare_delay_hours": 48.0},
            {"latent_window_hours": 300.0},
        ],
    )
    def test_mttdl_monotone_in_risk_factors(self, worse):
        base = dict(
            disks=8, mttf_hours=1e5, mttr_hours=24.0,
            mission_hours=10 * HOURS_PER_YEAR, spare_delay_hours=4.0,
            lse_burst_rate_per_hour=1e-4, latent_window_hours=100.0,
        )
        degraded = dict(base)
        degraded.update(worse)
        assert (
            group_reliability(**degraded).mttdl_hours
            < group_reliability(**base).mttdl_hours
        )

    def test_probabilities_are_probabilities(self):
        rel = group_reliability(
            disks=8, mttf_hours=3e4, mttr_hours=48.0,
            mission_hours=20 * HOURS_PER_YEAR, spare_delay_hours=8.0,
            lse_burst_rate_per_hour=1e-3, latent_window_hours=200.0,
        )
        for p in (
            rel.p_loss_mission, rel.p_rebuild_failure,
            rel.p_double_failure, rel.p_lse_exposure,
        ):
            assert 0.0 <= p <= 1.0
        assert rel.loss_rate_per_hour > 0
        assert rel.mttdl_hours == pytest.approx(1.0 / rel.loss_rate_per_hour)

    def test_lse_exposure_monotone_and_bounded(self):
        p = [
            lse_exposure_probability(7, 1e-4, window)
            for window in (0.0, 50.0, 100.0, 1e9)
        ]
        assert p[0] == 0.0
        assert p[0] < p[1] < p[2] < p[3] <= 1.0


def _calibration_spec(window_hours=120.0):
    """Homogeneous fleet, loss-rich, with an explicit latent window."""
    return CampaignSpec(
        fleet=FleetSpec(
            groups=3000,
            disks_per_group=4,
            mttr_hours=36.0,
            spare_delay_hours=6.0,
            classes=(
                DriveClass(mttf_hours=3.0e4, lse_burst_rate_per_hour=2e-4),
            ),
        ),
        policies=(
            ScrubPolicySpec(name="fixed", latent_window_hours=window_hours),
        ),
        mission_years=8.0,
        seed=7,
        shards=4,
    )


class TestMonteCarloCalibration:
    @pytest.fixture(scope="class")
    def result(self):
        return CampaignRunner(_calibration_spec()).run()

    def test_enough_losses_for_a_meaningful_interval(self, result):
        assert result.policies[0].losses >= 100

    def test_closed_form_mttdl_inside_mc_confidence_interval(self, result):
        estimate = result.policies[0]
        low, high = estimate.mttdl_ci_hours
        assert low < estimate.closed_form_mttdl_hours < high

    def test_closed_form_p_loss_inside_wilson_interval(self, result):
        estimate = result.policies[0]
        low, high = estimate.p_loss_ci
        assert low < estimate.closed_form_p_loss < high

    def test_interval_is_tight_enough_to_mean_something(self, result):
        low, high = result.policies[0].mttdl_ci_hours
        assert high / low < 1.6  # >=100 losses: a narrow Poisson interval


class TestScrubPolicyOrdering:
    @pytest.fixture(scope="class")
    def spec(self):
        return CampaignSpec(
            fleet=FleetSpec(
                groups=1500,
                disks_per_group=4,
                mttr_hours=36.0,
                spare_delay_hours=6.0,
                classes=(
                    DriveClass(mttf_hours=3.0e4, lse_burst_rate_per_hour=5e-4),
                ),
            ),
            policies=(
                ScrubPolicySpec(name="sequential-1w", algorithm="sequential"),
                ScrubPolicySpec(
                    name="staggered-1w", algorithm="staggered", regions=128
                ),
            ),
            mission_years=8.0,
            seed=11,
            shards=4,
        )

    def test_staggering_shrinks_the_schedule_derived_window(self, spec):
        sequential, staggered = resolve_latent_windows(spec)
        assert staggered < sequential

    def test_fleet_estimates_order_with_the_window(self, spec):
        result = CampaignRunner(spec).run()
        sequential, staggered = result.policies
        assert staggered.latent_window_hours < sequential.latent_window_hours
        # Common random numbers: identical failure draws, so staggered
        # can only convert fewer exposures into losses.
        assert staggered.losses < sequential.losses
        assert staggered.mttdl_hours > sequential.mttdl_hours
        assert (
            staggered.closed_form_mttdl_hours
            > sequential.closed_form_mttdl_hours
        )
