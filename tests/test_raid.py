"""Tests for the RAID substrate (repro.raid)."""

import numpy as np
import pytest

from repro.core import SequentialScrub, Scrubber
from repro.core.mlet import sector_visit_times
from repro.disk import Drive, hitachi_ultrastar_15k450
from repro.disk.models import DriveSpec
from repro.raid import (
    DataLossError,
    ErrorMap,
    RaidArray,
    RaidGeometry,
    RaidLevel,
    RebuildRiskModel,
)
from repro.sched import BlockDevice, NoopScheduler
from repro.sim import Simulation


def tiny_spec() -> DriveSpec:
    return hitachi_ultrastar_15k450().with_overrides(
        cylinders=30, outer_spt=64, inner_spt=64, num_zones=1, heads=2,
        average_seek=1e-3, full_stroke_seek=2e-3,
    )


def make_array(level=RaidLevel.RAID5, disks=3, chunk=16, strict=False):
    sim = Simulation()
    devices = [
        BlockDevice(sim, Drive(tiny_spec(), cache_enabled=False), NoopScheduler())
        for _ in range(disks)
    ]
    disk_sectors = devices[0].drive.total_sectors
    disk_sectors -= disk_sectors % chunk
    geometry = RaidGeometry(level, disks, chunk, disk_sectors)
    array = RaidArray(sim, devices, geometry, strict=strict)
    return sim, array


class TestGeometry:
    def test_capacity_raid5(self):
        geo = RaidGeometry(RaidLevel.RAID5, 4, 16, 160)
        assert geo.data_disks == 3
        assert geo.total_data_sectors == 160 * 3

    def test_capacity_raid1(self):
        geo = RaidGeometry(RaidLevel.RAID1, 2, 16, 160)
        assert geo.total_data_sectors == 160

    def test_parity_rotates(self):
        geo = RaidGeometry(RaidLevel.RAID5, 4, 16, 160)
        parities = [geo.parity_disk(s) for s in range(8)]
        assert parities == [3, 2, 1, 0, 3, 2, 1, 0]

    def test_raid0_has_no_parity(self):
        geo = RaidGeometry(RaidLevel.RAID0, 2, 16, 160)
        with pytest.raises(ValueError):
            geo.parity_disk(0)

    def test_map_read_within_chunk(self):
        geo = RaidGeometry(RaidLevel.RAID5, 3, 16, 160)
        chunks = geo.map_read(4, 8)
        assert len(chunks) == 1
        assert chunks[0].lbn == 4
        assert chunks[0].sectors == 8

    def test_map_read_spans_chunks_and_covers_extent(self):
        geo = RaidGeometry(RaidLevel.RAID5, 3, 16, 160)
        chunks = geo.map_read(10, 30)
        assert sum(c.sectors for c in chunks) == 30
        offsets = [c.logical_offset for c in chunks]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0

    def test_map_read_never_touches_parity_disk(self):
        geo = RaidGeometry(RaidLevel.RAID5, 3, 16, 160)
        for lbn in range(0, geo.total_data_sectors - 16, 7):
            for chunk in geo.map_read(lbn, 16):
                stripe = chunk.lbn // geo.chunk_sectors
                assert chunk.disk != geo.parity_disk(stripe)

    def test_map_write_includes_parity(self):
        geo = RaidGeometry(RaidLevel.RAID5, 3, 16, 160)
        writes = geo.map_write(0, 16)
        parity = [c for c in writes if c.logical_offset == -1]
        assert len(parity) == 1
        assert parity[0].disk == geo.parity_disk(0)

    def test_map_write_raid1_mirrors(self):
        geo = RaidGeometry(RaidLevel.RAID1, 2, 16, 160)
        writes = geo.map_write(0, 16)
        assert {c.disk for c in writes} == {0, 1}

    def test_stripe_members(self):
        geo = RaidGeometry(RaidLevel.RAID5, 4, 16, 160)
        members = geo.stripe_members(2)
        assert len(members) == 4
        assert {m.disk for m in members} == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            RaidGeometry(RaidLevel.RAID5, 2, 16, 160)
        with pytest.raises(ValueError):
            RaidGeometry(RaidLevel.RAID1, 3, 16, 160)
        with pytest.raises(ValueError):
            RaidGeometry(RaidLevel.RAID0, 1, 16, 160)
        with pytest.raises(ValueError):
            RaidGeometry(RaidLevel.RAID5, 3, 16, 170)  # not chunk-aligned
        geo = RaidGeometry(RaidLevel.RAID5, 3, 16, 160)
        with pytest.raises(ValueError):
            geo.map_read(geo.total_data_sectors, 1)
        with pytest.raises(ValueError):
            geo.stripe_members(geo.stripes)


class TestErrorMap:
    def test_inject_and_scan(self):
        errors = ErrorMap(2)
        errors.inject(0, 100, 3)
        assert errors.scan(0, 99, 10) == [100, 101, 102]
        assert errors.scan(1, 99, 10) == []
        assert errors.bad_count() == 3

    def test_repair(self):
        errors = ErrorMap(1)
        errors.inject(0, 10, 2)
        errors.repair(0, [10])
        assert errors.scan(0, 0, 100) == [11]
        assert errors.repaired == 1

    def test_clear_disk(self):
        errors = ErrorMap(2)
        errors.inject(1, 5)
        errors.clear_disk(1)
        assert errors.bad_count(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorMap(0)
        errors = ErrorMap(1)
        with pytest.raises(ValueError):
            errors.inject(2, 0)
        with pytest.raises(ValueError):
            errors.inject(0, -1)


class TestRaidArray:
    def test_read_completes(self):
        sim, array = make_array()
        done = array.read(0, 64)
        sim.run(until=done)
        assert array.data_loss_events == 0

    def test_write_touches_parity_disk(self):
        sim, array = make_array()
        done = array.write(0, 16)
        sim.run(until=done)
        touched = {
            r.command.lbn
            for device in array.devices
            for r in device.log.requests()
        }
        total = sum(len(device.log.requests()) for device in array.devices)
        assert total == 2  # data chunk + parity chunk

    def test_read_detects_and_repairs_lse(self):
        sim, array = make_array()
        array.errors.inject(0, 4, 2)
        done = array.read(0, 64)
        sim.run(until=done)
        # Whichever chunk read covered disk 0's sectors repaired them.
        if array.errors_detected_by_read:
            assert array.errors.bad_count(0) == 0
            assert array.errors_repaired >= 1

    def test_write_overwrites_lse(self):
        sim, array = make_array()
        array.errors.inject(0, 0, 4)
        done = array.write(0, 16)
        sim.run(until=done)
        assert array.errors.bad_count() == 0

    def test_raid0_read_of_bad_sector_is_data_loss(self):
        sim, array = make_array(level=RaidLevel.RAID0, disks=2)
        array.errors.inject(0, 0, 1)
        done = array.read(0, 16)
        sim.run(until=done)
        assert array.data_loss_events >= 1

    def test_strict_mode_raises(self):
        sim, array = make_array(level=RaidLevel.RAID0, disks=2, strict=True)
        array.errors.inject(0, 0, 1)
        array.read(0, 16)
        with pytest.raises(DataLossError):
            sim.run()

    def test_scrubber_on_member_repairs_errors(self):
        sim, array = make_array()
        array.errors.inject(1, 100, 5)
        scrubber = Scrubber(
            sim, array.devices[1], SequentialScrub(), max_passes=1
        )
        process = scrubber.start()
        sim.run(until=process)
        assert array.errors_detected_by_scrub == 5
        assert array.errors.bad_count() == 0

    def test_fail_and_rebuild_clean(self):
        sim, array = make_array()
        array.fail_disk(1)
        done = array.rebuild(request_sectors=256)
        lost = sim.run(until=done)
        assert lost == 0
        assert array.failed is None

    def test_rebuild_counts_unrecoverable_sectors(self):
        sim, array = make_array()
        array.fail_disk(1)
        array.errors.inject(0, 50, 3)  # latent errors on a survivor
        done = array.rebuild(request_sectors=256)
        lost = sim.run(until=done)
        assert lost == 3
        assert array.data_loss_events == 3

    def test_degraded_read_uses_survivors(self):
        sim, array = make_array()
        array.fail_disk(0)
        done = array.read(0, array.geometry.chunk_sectors * 2)
        sim.run(until=done)
        assert len(array.devices[0].log.requests()) == 0

    def test_double_failure_rejected(self):
        _, array = make_array()
        array.fail_disk(0)
        with pytest.raises(RuntimeError):
            array.fail_disk(1)

    def test_raid0_cannot_fail(self):
        _, array = make_array(level=RaidLevel.RAID0, disks=2)
        with pytest.raises(RuntimeError):
            array.fail_disk(0)

    def test_rebuild_without_failure_rejected(self):
        _, array = make_array()
        with pytest.raises(RuntimeError):
            array.rebuild()

    def test_member_count_checked(self):
        sim = Simulation()
        devices = [
            BlockDevice(sim, Drive(tiny_spec()), NoopScheduler())
            for _ in range(2)
        ]
        geometry = RaidGeometry(RaidLevel.RAID5, 3, 16, 160)
        with pytest.raises(ValueError):
            RaidArray(sim, devices, geometry)


class TestRebuildRisk:
    def _model(self, regions=None):
        from repro.core import StaggeredScrub

        total = 50_000
        algorithm = StaggeredScrub(regions) if regions else SequentialScrub()
        visits, duration = sector_visit_times(algorithm, total, 128, 20e6)
        return RebuildRiskModel(
            visits, duration, burst_rate=0.5, mean_burst_length=2000.0,
            max_burst_length=10_000,
        )

    def test_risk_estimates_bounded(self):
        model = self._model()
        risk = model.simulate(np.random.default_rng(0), trials=200)
        assert 0.0 <= risk.loss_probability <= 1.0
        assert risk.expected_exposed_sectors >= 0.0
        assert risk.trials == 200

    def test_faster_scrubbing_lowers_risk(self):
        total = 50_000
        slow_alg, fast_alg = SequentialScrub(), SequentialScrub()
        slow_visits, slow_pass = sector_visit_times(slow_alg, total, 128, 5e6)
        fast_visits, fast_pass = sector_visit_times(fast_alg, total, 128, 50e6)
        slow = RebuildRiskModel(slow_visits, slow_pass, burst_rate=0.5,
                                mean_burst_length=2000.0)
        fast = RebuildRiskModel(fast_visits, fast_pass, burst_rate=0.5,
                                mean_burst_length=2000.0)
        rng = np.random.default_rng(1)
        horizon = 10 * slow_pass  # compare over identical horizons
        slow_risk = slow.simulate(rng, trials=300, horizon=horizon)
        fast_risk = fast.simulate(
            np.random.default_rng(1), trials=300, horizon=horizon
        )
        assert (
            fast_risk.expected_exposed_sectors
            < slow_risk.expected_exposed_sectors
        )

    def test_staggered_lowers_risk_for_bursts(self):
        sequential = self._model()
        staggered = self._model(regions=64)
        seq_risk = sequential.simulate(np.random.default_rng(2), trials=300)
        stag_risk = staggered.simulate(np.random.default_rng(2), trials=300)
        assert (
            stag_risk.expected_exposed_sectors
            < seq_risk.expected_exposed_sectors
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RebuildRiskModel(np.zeros(10), 0.0, 1e-3)
        with pytest.raises(ValueError):
            RebuildRiskModel(np.zeros(10), 1.0, 0.0)
        model = self._model()
        with pytest.raises(ValueError):
            model.simulate(np.random.default_rng(0), trials=0)
