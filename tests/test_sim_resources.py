"""Tests for Resource and Store (repro.sim.resources)."""

import pytest

from repro.sim import Resource, Simulation, Store


def hold(sim, res, name, duration, log):
    req = res.request()
    yield req
    try:
        log.append(("acquire", name, sim.now))
        yield sim.timeout(duration)
    finally:
        res.release(req)
        log.append(("release", name, sim.now))


def test_resource_serialises_unit_capacity():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    log = []
    sim.process(hold(sim, res, "a", 5, log))
    sim.process(hold(sim, res, "b", 3, log))
    sim.run()
    assert log == [
        ("acquire", "a", 0.0),
        ("release", "a", 5.0),
        ("acquire", "b", 5.0),
        ("release", "b", 8.0),
    ]


def test_resource_capacity_two_runs_pair_concurrently():
    sim = Simulation()
    res = Resource(sim, capacity=2)
    log = []
    for name in ("a", "b", "c"):
        sim.process(hold(sim, res, name, 4, log))
    sim.run()
    acquires = [(n, t) for op, n, t in log if op == "acquire"]
    assert acquires == [("a", 0.0), ("b", 0.0), ("c", 4.0)]


def test_resource_fifo_ordering():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    log = []

    def staggered(sim, res, name, start, log):
        yield sim.timeout(start)
        yield from hold(sim, res, name, 10, log)

    for name, start in [("first", 1), ("second", 2), ("third", 3)]:
        sim.process(staggered(sim, res, name, start, log))
    sim.run()
    acquires = [n for op, n, _ in log if op == "acquire"]
    assert acquires == ["first", "second", "third"]


def test_resource_counts():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    log = []
    sim.process(hold(sim, res, "a", 5, log))
    sim.process(hold(sim, res, "b", 5, log))
    sim.run(until=1)
    assert res.count == 1
    assert res.queue_length == 1


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulation(), capacity=0)


def test_release_without_hold_raises():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    req = res.request()
    sim.run()
    res.release(req)
    with pytest.raises(RuntimeError):
        res.release(req)


def test_cancel_waiting_request():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    assert res.queue_length == 1
    res.cancel(second)
    assert res.queue_length == 0
    with pytest.raises(RuntimeError):
        res.cancel(second)
    res.release(first)
    sim.run()


def test_request_context_manager_releases():
    sim = Simulation()
    res = Resource(sim, capacity=1)
    times = []

    def proc(sim, res, name):
        with res.request() as req:
            yield req
            times.append((name, sim.now))
            yield sim.timeout(2)

    sim.process(proc(sim, res, "a"))
    sim.process(proc(sim, res, "b"))
    sim.run()
    assert times == [("a", 0.0), ("b", 2.0)]


def test_store_put_then_get():
    sim = Simulation()
    store = Store(sim)
    store.put("item")
    got = {}

    def getter(sim, store):
        got["value"] = yield store.get()

    sim.process(getter(sim, store))
    sim.run()
    assert got["value"] == "item"


def test_store_get_blocks_until_put():
    sim = Simulation()
    store = Store(sim)
    got = {}

    def getter(sim, store):
        got["value"] = yield store.get()
        got["time"] = sim.now

    def putter(sim, store):
        yield sim.timeout(5)
        store.put(99)

    sim.process(getter(sim, store))
    sim.process(putter(sim, store))
    sim.run()
    assert got == {"value": 99, "time": 5.0}


def test_store_fifo_order_for_items_and_getters():
    sim = Simulation()
    store = Store(sim)
    received = []

    def getter(sim, store, name):
        item = yield store.get()
        received.append((name, item))

    sim.process(getter(sim, store, "g1"))
    sim.process(getter(sim, store, "g2"))

    def putter(sim, store):
        yield sim.timeout(1)
        store.put("first")
        store.put("second")

    sim.process(putter(sim, store))
    sim.run()
    assert received == [("g1", "first"), ("g2", "second")]


def test_store_len_reflects_buffered_items():
    sim = Simulation()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
