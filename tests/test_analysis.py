"""Tests for the analysis package: collision evaluation, slowdown
simulation, service model, throughput and impact helpers."""

import numpy as np
import pytest

from repro.analysis import (
    ScrubServiceModel,
    evaluate_policy,
    run_impact_experiment,
    simulate_adaptive_waiting,
    simulate_fixed_waiting,
    standalone_scrub_throughput,
    sweep_policy,
)
from repro.analysis.impact import ScrubberSetup
from repro.analysis.throughput import verify_response_times
from repro.core import SequentialScrub, StaggeredScrub
from repro.core.adaptive import (
    ExponentialSchedule,
    FixedSchedule,
    LinearSchedule,
    SwappingSchedule,
)
from repro.core.optimizer import ScrubParameterOptimizer
from repro.core.policies import WaitingPolicy
from repro.disk import hitachi_ultrastar_15k450


@pytest.fixture(scope="module")
def service_model():
    return ScrubServiceModel.from_spec(hitachi_ultrastar_15k450())


@pytest.fixture(scope="module")
def durations():
    rng = np.random.default_rng(17)
    return np.exp(2.2 * rng.standard_normal(30_000)) * 0.05


class TestServiceModel:
    def test_monotone_in_size(self, service_model):
        times = service_model.time(
            np.array([64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024])
        )
        assert np.all(np.diff(times) > 0)

    def test_64k_near_rotation_period(self, service_model):
        # Back-to-back sequential VERIFY is rotation-bound: ~4-5 ms.
        assert 0.004 < float(service_model.time(65536.0)) < 0.006

    def test_extrapolation_beyond_grid(self, service_model):
        inside = float(service_model.time(8 * 1024 * 1024))
        outside = float(service_model.time(16 * 1024 * 1024))
        assert outside > inside * 1.5

    def test_max_size_for_slowdown(self, service_model):
        cap = service_model.max_size_for_slowdown(0.0504)
        # The paper's 50.4 ms budget caps the size at roughly 4 MB.
        assert 2 * 1024 * 1024 < cap < 8 * 1024 * 1024
        assert float(service_model.time(float(cap))) <= 0.0504

    def test_validation(self, service_model):
        with pytest.raises(ValueError):
            service_model.time(0)
        with pytest.raises(ValueError):
            service_model.max_size_for_slowdown(0)
        with pytest.raises(ValueError):
            ScrubServiceModel([1000], [0.1])


class TestCollisionEvaluation:
    def test_point_fields_consistent(self, durations):
        point = evaluate_policy(WaitingPolicy(0.1), durations)
        assert 0 <= point.collision_rate <= 1
        assert 0 <= point.utilisation <= 1
        assert point.collisions == int(
            WaitingPolicy(0.1).fired_mask(durations).sum()
        )

    def test_total_requests_denominator(self, durations):
        base = evaluate_policy(WaitingPolicy(0.1), durations)
        halved = evaluate_policy(
            WaitingPolicy(0.1), durations, total_requests=2 * len(durations)
        )
        assert halved.collision_rate == pytest.approx(base.collision_rate / 2)

    def test_sweep_produces_tradeoff_curve(self, durations):
        points = sweep_policy(
            lambda t: WaitingPolicy(t), [0.05, 0.2, 0.8], durations
        )
        rates = [p.collision_rate for p in points]
        utils = [p.utilisation for p in points]
        assert rates == sorted(rates, reverse=True)
        assert utils == sorted(utils, reverse=True)

    def test_dominates(self, durations):
        points = sweep_policy(
            lambda t: WaitingPolicy(t), [0.05, 0.2], durations
        )
        assert not points[0].dominates(points[1])

    def test_validation(self, durations):
        with pytest.raises(ValueError):
            evaluate_policy(WaitingPolicy(0.1), np.array([]))
        with pytest.raises(ValueError):
            evaluate_policy(WaitingPolicy(0.1), durations, total_requests=0)


class TestSlowdownSimulation:
    def test_fixed_accounting(self, service_model):
        durations = np.array([1.0])
        s = float(service_model.time(65536.0))
        result = simulate_fixed_waiting(
            durations, 0.1, 65536, service_model, total_requests=10, span=100.0
        )
        usable = 0.9
        complete = int(usable // s)
        assert result.collisions == 1
        expected_delay = s - (usable - complete * s)
        assert result.mean_slowdown == pytest.approx(expected_delay / 10)
        assert result.scrub_bytes == (complete + 1) * 65536

    def test_no_fire_no_slowdown(self, service_model):
        result = simulate_fixed_waiting(
            np.array([0.05]), 0.1, 65536, service_model, 10, 100.0
        )
        assert result.collisions == 0
        assert result.mean_slowdown == 0.0
        assert result.scrub_bytes == 0.0

    def test_larger_threshold_lowers_slowdown(self, durations, service_model):
        low = simulate_fixed_waiting(
            durations, 0.05, 1024 * 1024, service_model, len(durations), 1000.0
        )
        high = simulate_fixed_waiting(
            durations, 1.0, 1024 * 1024, service_model, len(durations), 1000.0
        )
        assert high.mean_slowdown < low.mean_slowdown
        assert high.throughput < low.throughput

    def test_larger_requests_more_throughput_more_slowdown(
        self, durations, service_model
    ):
        small = simulate_fixed_waiting(
            durations, 0.1, 65536, service_model, len(durations), 1000.0
        )
        big = simulate_fixed_waiting(
            durations, 0.1, 4 * 1024 * 1024, service_model, len(durations), 1000.0
        )
        assert big.throughput > small.throughput
        assert big.mean_slowdown > small.mean_slowdown

    def test_adaptive_fixed_dispatch(self, durations, service_model):
        fixed_via_adaptive = simulate_adaptive_waiting(
            durations, 0.1, FixedSchedule(65536), service_model,
            len(durations), 1000.0,
        )
        fixed = simulate_fixed_waiting(
            durations, 0.1, 65536, service_model, len(durations), 1000.0
        )
        assert fixed_via_adaptive.mean_slowdown == pytest.approx(
            fixed.mean_slowdown
        )

    def test_exponential_approaches_cap_fixed(self, durations, service_model):
        """The paper's footnote: adaptive overlaps the max-size fixed curve."""
        cap = 4 * 1024 * 1024
        adaptive = simulate_adaptive_waiting(
            durations, 0.2, ExponentialSchedule(65536, 2.0, cap),
            service_model, len(durations), 1000.0,
        )
        fixed = simulate_fixed_waiting(
            durations, 0.2, cap, service_model, len(durations), 1000.0
        )
        assert adaptive.throughput == pytest.approx(fixed.throughput, rel=0.15)
        assert adaptive.mean_slowdown == pytest.approx(
            fixed.mean_slowdown, rel=0.25
        )

    def test_linear_schedule_runs(self, durations, service_model):
        result = simulate_adaptive_waiting(
            durations[:2000], 0.2,
            LinearSchedule(65536, 2.0, 65536, 4 * 1024 * 1024),
            service_model, 2000, 1000.0,
        )
        assert result.throughput > 0

    def test_swapping_infinite_switch_equals_fixed(self, durations, service_model):
        swap = simulate_adaptive_waiting(
            durations[:5000], 0.2,
            SwappingSchedule(65536, 4 * 1024 * 1024, float("inf")),
            service_model, 5000, 1000.0,
        )
        fixed = simulate_fixed_waiting(
            durations[:5000], 0.2, 65536, service_model, 5000, 1000.0
        )
        assert swap.mean_slowdown == pytest.approx(fixed.mean_slowdown)
        assert swap.throughput == pytest.approx(fixed.throughput)

    def test_validation(self, durations, service_model):
        with pytest.raises(ValueError):
            simulate_fixed_waiting(durations, -1, 65536, service_model, 10, 1.0)
        with pytest.raises(ValueError):
            simulate_fixed_waiting(durations, 0.1, 65536, service_model, 0, 1.0)
        with pytest.raises(ValueError):
            simulate_fixed_waiting(durations, 0.1, 65536, service_model, 10, 0.0)


class TestOptimizer:
    def test_meets_goal_and_beats_cfq_like(self, durations, service_model):
        optimizer = ScrubParameterOptimizer(
            durations, len(durations), 1000.0, service_model
        )
        best = optimizer.optimize(0.002)
        assert best.achieved_slowdown <= 0.002 * 1.01
        cfq_like = simulate_fixed_waiting(
            durations, 0.010, 65536, service_model, len(durations), 1000.0
        )
        assert best.throughput > 2 * cfq_like.throughput

    def test_tighter_goal_not_more_throughput(self, durations, service_model):
        optimizer = ScrubParameterOptimizer(
            durations, len(durations), 1000.0, service_model
        )
        tight = optimizer.optimize(0.0005)
        loose = optimizer.optimize(0.004)
        assert tight.throughput <= loose.throughput * 1.01

    def test_size_cap_respected(self, durations, service_model):
        optimizer = ScrubParameterOptimizer(
            durations, len(durations), 1000.0, service_model,
            max_slowdown=0.010,
        )
        best = optimizer.optimize(0.002)
        assert float(service_model.time(float(best.request_bytes))) <= 0.010

    def test_validation(self, durations, service_model):
        with pytest.raises(ValueError):
            ScrubParameterOptimizer(np.array([]), 1, 1.0, service_model)
        optimizer = ScrubParameterOptimizer(
            durations, len(durations), 1000.0, service_model
        )
        with pytest.raises(ValueError):
            optimizer.best_threshold(65536, 0.0)


class TestThroughputHelpers:
    def test_standalone_sequential(self):
        mbps = standalone_scrub_throughput(
            hitachi_ultrastar_15k450(), SequentialScrub(), horizon=5.0
        ) / 1e6
        assert 10 < mbps < 20

    def test_staggered_beats_sequential_with_many_regions(self):
        seq = standalone_scrub_throughput(
            hitachi_ultrastar_15k450(), SequentialScrub(), horizon=5.0
        )
        stag = standalone_scrub_throughput(
            hitachi_ultrastar_15k450(), StaggeredScrub(256), horizon=5.0
        )
        assert stag > seq

    def test_delay_reduces_throughput(self):
        fast = standalone_scrub_throughput(
            hitachi_ultrastar_15k450(), SequentialScrub(), horizon=3.0
        )
        slow = standalone_scrub_throughput(
            hitachi_ultrastar_15k450(), SequentialScrub(), horizon=3.0,
            delay=0.032,
        )
        assert slow < fast / 3

    def test_verify_response_patterns(self):
        sequential = verify_response_times(
            hitachi_ultrastar_15k450(), 1024, pattern="sequential", samples=30
        )
        assert np.mean(sequential[5:]) == pytest.approx(0.004, rel=0.1)
        with pytest.raises(ValueError):
            verify_response_times(hitachi_ultrastar_15k450(), 1024, pattern="zig")


class TestImpactExperiment:
    def test_scrubber_steals_throughput_at_default_priority(self):
        from repro.sched.request import PriorityClass

        alone = run_impact_experiment(
            hitachi_ultrastar_15k450(), "sequential", horizon=12.0
        )
        contended = run_impact_experiment(
            hitachi_ultrastar_15k450(), "sequential",
            scrubber=ScrubberSetup(priority=PriorityClass.BE), horizon=12.0,
        )
        assert contended.foreground_mbps < alone.foreground_mbps
        assert contended.scrubber_mbps > 1.0

    def test_idle_priority_protects_foreground(self):
        alone = run_impact_experiment(
            hitachi_ultrastar_15k450(), "sequential", horizon=12.0
        )
        gated = run_impact_experiment(
            hitachi_ultrastar_15k450(), "sequential",
            scrubber=ScrubberSetup(), horizon=12.0,
        )
        assert gated.foreground_mbps > 0.75 * alone.foreground_mbps

    def test_random_workload_slower(self):
        seq = run_impact_experiment(
            hitachi_ultrastar_15k450(), "sequential", horizon=10.0
        )
        rand = run_impact_experiment(
            hitachi_ultrastar_15k450(), "random", horizon=10.0
        )
        assert rand.foreground_mbps < seq.foreground_mbps

    def test_validation(self):
        with pytest.raises(ValueError):
            run_impact_experiment(hitachi_ultrastar_15k450(), "mixed")
        with pytest.raises(ValueError):
            run_impact_experiment(
                hitachi_ultrastar_15k450(), "sequential", horizon=0
            )
        with pytest.raises(ValueError):
            ScrubberSetup(algorithm="zigzag").build_algorithm()
