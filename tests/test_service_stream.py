"""Event-stream regression: what the API serves is the file on disk.

The streaming endpoint relays ``events.jsonl`` *bytes* from a client
offset, so the contract is byte-identity — for a one-shot fetch, for a
live follow of a running campaign, and for any assembly of partial
reads across disconnect/reconnect cycles.
"""

import json
import os
import time

import pytest

from repro.obs import follow_events, read_events_chunk
from repro.service import CampaignService, ServiceClient

pytestmark = pytest.mark.service


def _spec(groups=48, shards=4, seed=13):
    return {
        "fleet": {
            "groups": groups,
            "disks_per_group": 4,
            "mttr_hours": 36.0,
            "spare_delay_hours": 6.0,
            "classes": [{"mttf_hours": 2.5e4, "lse_burst_rate_per_hour": 3e-4}],
        },
        "policies": [{"name": "weekly", "latent_window_hours": 84.0}],
        "mission_years": 6.0,
        "seed": seed,
        "shards": shards,
    }


def _events_file(service, job_id):
    path = service.scheduler.events_path(job_id)
    with open(path, "rb") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    with CampaignService(
        tmp_path_factory.mktemp("stream"), port=0, status_interval=0.0
    ) as svc:
        yield svc


def test_snapshot_is_byte_identical(service):
    client = ServiceClient(service.url, client="s")
    _, payload = client.submit(_spec(seed=201))
    job_id = payload["job"]["id"]
    client.wait(job_id, timeout=60)
    status, raw = client.events(job_id)
    assert status == 200
    disk = _events_file(service, job_id)
    assert raw == disk
    # Every line parses as an event; the stream is complete.
    events = [json.loads(line) for line in raw.splitlines() if line]
    assert events[0]["event"] == "campaign_started"
    assert events[-1]["event"] == "campaign_finished"


def test_offset_resume_is_byte_identical(service):
    client = ServiceClient(service.url, client="s")
    _, payload = client.submit(_spec(seed=202))
    job_id = payload["job"]["id"]
    client.wait(job_id, timeout=60)
    disk = _events_file(service, job_id)
    for offset in (0, 1, 17, len(disk) // 2, len(disk) - 1, len(disk)):
        status, raw = client.events(job_id, offset=offset)
        assert status == 200
        assert raw == disk[offset:], f"offset {offset}"
    # Past-the-end offsets return nothing rather than erroring.
    status, raw = client.events(job_id, offset=len(disk) + 1000)
    assert status == 200 and raw == b""


def test_follow_live_campaign_to_completion(service):
    """follow=1 on a running campaign streams through its finish."""
    client = ServiceClient(service.url, client="s")
    _, payload = client.submit(_spec(groups=4_800, shards=8, seed=203))
    job_id = payload["job"]["id"]
    events = list(client.iter_events(job_id, follow=True))
    assert events[-1]["event"] == "campaign_finished"
    shards_done = [e["shard"] for e in events if e["event"] == "shard_completed"]
    assert sorted(shards_done) == list(range(8))
    # The followed stream was exactly the file, in order.
    raw_again = client.events(job_id)[1]
    disk = _events_file(service, job_id)
    assert raw_again == disk
    assert [json.loads(l) for l in disk.splitlines() if l] == events


def test_disconnect_reconnect_assembles_identical_bytes(service):
    """Partial reads + reconnects from the next offset lose nothing."""
    client = ServiceClient(service.url, client="s")
    _, payload = client.submit(_spec(groups=4_800, shards=8, seed=204))
    job_id = payload["job"]["id"]
    assembled = b""
    # Read a little, hang up mid-stream, reconnect where we left off.
    for _round in range(64):
        status, response, conn = client.stream_events(
            job_id, offset=len(assembled), follow=True
        )
        assert status == 200
        chunk = response.read(97)  # deliberately ragged reads
        conn.close()  # disconnect, possibly mid-line
        assembled += chunk
        job = client.job(job_id)[1]["job"]
        if job["state"] == "done" and not chunk:
            break
        time.sleep(0.02)
    else:
        raise AssertionError("campaign never finished during reconnect loop")
    # Drain whatever remains in one final snapshot fetch.
    assembled += client.events(job_id, offset=len(assembled))[1]
    assert assembled == _events_file(service, job_id)


def test_read_events_chunk_and_follow_events_helpers(tmp_path):
    """The obs-layer primitives the API streams through."""
    path = os.path.join(tmp_path, "events.jsonl")
    chunk, offset = read_events_chunk(path)
    assert chunk == b"" and offset == 0  # missing file is empty, not an error
    with open(path, "wb") as handle:
        handle.write(b'{"event":"a"}\n')
    chunk, offset = read_events_chunk(path)
    assert chunk == b'{"event":"a"}\n' and offset == len(chunk)
    with open(path, "ab") as handle:
        handle.write(b'{"event":"b"}\n')
    chunk2, offset2 = read_events_chunk(path, offset)
    assert chunk2 == b'{"event":"b"}\n'

    stop = {"now": False}
    seen = []

    def consume():
        for piece in follow_events(path, poll=0.01, should_stop=lambda: stop["now"]):
            seen.append(piece)

    import threading

    thread = threading.Thread(target=consume)
    thread.start()
    time.sleep(0.05)
    with open(path, "ab") as handle:
        handle.write(b'{"event":"c"}\n')
    time.sleep(0.1)
    stop["now"] = True
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert b"".join(seen) == open(path, "rb").read()
