"""Tests for synthetic trace generation and the catalog (repro.traces)."""

import numpy as np
import pytest

from repro.sim import RandomStreams
from repro.traces import (
    CATALOG,
    SyntheticTraceGenerator,
    TraceProfile,
    generate_trace,
)
from repro.traces.catalog import trace_idle_intervals
from repro.traces.idle import idle_intervals, service_times
from repro.traces.synth import FLAT, OFFICE_HOURS


def make_generator(profile):
    return SyntheticTraceGenerator(profile, RandomStreams(seed=11).get("synth"))


class TestProfileValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TraceProfile(name="x", duration=0)
        with pytest.raises(ValueError):
            TraceProfile(name="x", idle_gap_mean=0)
        with pytest.raises(ValueError):
            TraceProfile(name="x", burst_len_mean=0.5)
        with pytest.raises(ValueError):
            TraceProfile(name="x", gap_autocorr=1.0)
        with pytest.raises(ValueError):
            TraceProfile(name="x", hourly_profile=())
        with pytest.raises(ValueError):
            TraceProfile(name="x", write_fraction=1.5)
        with pytest.raises(ValueError):
            TraceProfile(
                name="x", size_choices=(8,), size_weights=(0.5, 0.5)
            )


class TestGenerator:
    def test_trace_is_valid_and_bounded(self):
        profile = TraceProfile(
            name="t", duration=3600.0, capacity_sectors=100_000,
            idle_gap_mean=0.2, idle_gap_cov=5.0, burst_len_mean=5,
        )
        trace = make_generator(profile).generate()
        assert len(trace) > 100
        assert trace.times[-1] < 3600.0
        assert np.all(np.diff(trace.times) >= 0)
        assert np.all(trace.lbns + trace.sectors <= 100_000)

    def test_reproducible(self):
        profile = TraceProfile(name="t", duration=600.0)
        a = make_generator(profile).generate()
        b = make_generator(profile).generate()
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.lbns, b.lbns)

    def test_memoryless_rate_and_cov(self):
        profile = TraceProfile(
            name="poisson", duration=600.0, memoryless=True, rate=100.0,
            hourly_profile=FLAT,
        )
        trace = make_generator(profile).generate()
        rate = len(trace) / trace.duration
        assert rate == pytest.approx(100.0, rel=0.1)
        inter = trace.interarrivals
        cov = inter.std() / inter.mean()
        assert 0.9 < cov < 1.1

    def test_bursty_has_high_cov(self):
        profile = TraceProfile(
            name="bursty", duration=7200.0, idle_gap_mean=0.3,
            idle_gap_cov=20.0, burst_len_mean=10, hourly_profile=FLAT,
        )
        trace = make_generator(profile).generate()
        inter = trace.interarrivals
        assert inter.std() / inter.mean() > 5.0

    def test_write_fraction_respected(self):
        profile = TraceProfile(
            name="w", duration=1800.0, write_fraction=0.8, hourly_profile=FLAT,
        )
        trace = make_generator(profile).generate()
        assert trace.is_write.mean() == pytest.approx(0.8, abs=0.05)

    def test_sizes_from_choices(self):
        profile = TraceProfile(
            name="s", duration=600.0, size_choices=(8, 64),
            size_weights=(0.5, 0.5), hourly_profile=FLAT,
        )
        trace = make_generator(profile).generate()
        assert set(np.unique(trace.sectors)) <= {8, 64}

    def test_periodic_profile_modulates_hourly_counts(self):
        profile = TraceProfile(
            name="p", duration=2 * 86400.0, idle_gap_mean=0.5,
            idle_gap_cov=3.0, burst_len_mean=3,
            hourly_profile=OFFICE_HOURS,
        )
        trace = make_generator(profile).generate()
        counts = trace.requests_per_bin(3600.0)[:48].astype(float)
        busy = counts[9:17].mean() + counts[33:41].mean()
        quiet = counts[0:5].mean() + counts[24:29].mean()
        assert busy > 2 * quiet

    def test_sequential_runs_present(self):
        profile = TraceProfile(
            name="seq", duration=600.0, seq_prob=0.9, hourly_profile=FLAT,
        )
        trace = make_generator(profile).generate()
        deltas = np.diff(trace.lbns)
        expected = trace.sectors[:-1]
        sequential = np.mean(deltas == expected)
        assert sequential > 0.6


class TestIdleExtraction:
    def test_simple_idle_intervals(self):
        times = np.array([0.0, 1.0, 1.001, 5.0])
        service = np.full(4, 0.1)
        starts, durations = idle_intervals(times, service)
        # busy: [0,0.1]; idle to 1.0; busy till 1.101+0.1? request at 1.001
        # arrives during service of the one at 1.0 -> queued.
        assert len(starts) == 2
        assert durations[0] == pytest.approx(0.9)
        assert starts[1] == pytest.approx(1.2)  # queued request runs 1.1-1.2
        assert durations[1] == pytest.approx(5.0 - 1.2)

    def test_queueing_absorbs_gaps(self):
        times = np.array([0.0, 0.01, 0.02, 10.0])
        service = np.full(4, 1.0)
        starts, durations = idle_intervals(times, service)
        assert len(starts) == 1
        assert starts[0] == pytest.approx(3.0)

    def test_min_duration_filter(self):
        times = np.array([0.0, 0.2, 10.0])
        service = np.full(3, 0.1)
        _, durations = idle_intervals(times, service, min_duration=1.0)
        assert len(durations) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            idle_intervals(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            idle_intervals(np.array([0.0, 1.0]), np.array([0.1]))
        with pytest.raises(ValueError):
            idle_intervals(np.array([0.0, 1.0]), np.array([-0.1, 0.1]))
        with pytest.raises(ValueError):
            service_times(np.array([8]), positioning=-1)

    def test_empty_input(self):
        starts, durations = idle_intervals(np.array([5.0]))
        assert len(starts) == 0


class TestCatalog:
    def test_catalog_covers_paper_tables(self):
        expected = {
            "MSRsrc11", "MSRusr1", "MSRproj2", "MSRprn1",
            "HPc6t8d0", "HPc6t5d1", "HPc6t5d0", "HPc3t3d0",
            "TPCdisk66", "TPCdisk88", "MSRusr2",
        }
        assert expected <= set(CATALOG)

    def test_paper_metadata_recorded(self):
        spec = CATALOG["MSRsrc11"]
        assert spec.paper_requests_per_week == 45_746_222
        assert spec.paper_idle_mean == pytest.approx(0.4640)
        assert spec.paper_idle_cov == pytest.approx(21.693)

    def test_generate_unknown_name(self):
        with pytest.raises(KeyError):
            generate_trace("nope")

    def test_generate_reproducible(self):
        a = generate_trace("MSRprn1", duration=600.0, seed=5)
        b = generate_trace("MSRprn1", duration=600.0, seed=5)
        assert np.array_equal(a.times, b.times)

    def test_seed_changes_trace(self):
        a = generate_trace("MSRprn1", duration=600.0, seed=5)
        b = generate_trace("MSRprn1", duration=600.0, seed=6)
        assert not np.array_equal(a.times, b.times)

    def test_rate_scale_reduces_requests(self):
        full = generate_trace("MSRsrc11", duration=1800.0)
        scaled = generate_trace("MSRsrc11", duration=1800.0, rate_scale=0.1)
        assert len(scaled) < len(full) / 2

    def test_rate_scale_validation(self):
        with pytest.raises(ValueError):
            generate_trace("MSRsrc11", rate_scale=0)

    def test_tpcc_is_memoryless(self):
        trace = generate_trace("TPCdisk66", duration=300.0)
        _, durations = trace_idle_intervals("TPCdisk66", trace)
        cov = durations.std() / durations.mean()
        assert 0.7 < cov < 1.3
        assert durations.mean() == pytest.approx(0.0014, rel=0.25)

    def test_cello_msr_have_heavy_tails(self):
        for name in ("MSRsrc11", "HPc6t8d0"):
            trace = generate_trace(name, duration=4 * 3600.0)
            _, durations = trace_idle_intervals(name, trace)
            cov = durations.std() / durations.mean()
            assert cov > 5.0, name
