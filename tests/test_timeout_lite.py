"""Tests for the lite per-test timeout plugin (tools.pytest_timeout_lite).

Three contracts: a timed-out test fails (it is not swallowed, even by
its own ``except Exception``), the failure message names the test's
node id, and neither the alarm handler nor a pending timer leaks into
whatever runs next.
"""

import signal

import pytest

pytest_plugins = ["pytester"]

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="plugin is SIGALRM-based"
)

_WEDGED_SUITE = """
    import time

    def test_wedges():
        # A retry loop that swallows every Exception: the timeout must
        # still get through (TestTimeout derives from BaseException).
        try:
            while True:
                time.sleep(0.01)
        except Exception:
            pass

    def test_after_still_runs():
        # The previous timeout must not have left a stale handler or a
        # ticking timer behind: sleeping here would re-fire it.
        time.sleep(0.15)
"""


def test_timeout_fails_with_test_id_and_no_leak(pytester):
    pytester.makepyfile(test_wedge=_WEDGED_SUITE)
    result = pytester.runpytest(
        "-p", "tools.pytest_timeout_lite", "--lite-timeout", "0.3"
    )
    result.assert_outcomes(failed=1, passed=1)
    result.stdout.fnmatch_lines(
        ["*test_wedge.py::test_wedges exceeded the 0.3s per-test timeout*"]
    )


def test_handler_restored_after_session(pytester):
    before = signal.getsignal(signal.SIGALRM)
    pytester.makepyfile(test_wedge=_WEDGED_SUITE)
    result = pytester.runpytest(
        "-p", "tools.pytest_timeout_lite", "--lite-timeout", "0.3"
    )
    result.assert_outcomes(failed=1, passed=1)
    assert signal.getsignal(signal.SIGALRM) is before


def test_zero_timeout_disables(pytester):
    pytester.makepyfile(
        """
        import time

        def test_slow_but_fine():
            time.sleep(0.2)
        """
    )
    result = pytester.runpytest(
        "-p", "tools.pytest_timeout_lite", "--lite-timeout", "0"
    )
    result.assert_outcomes(passed=1)
