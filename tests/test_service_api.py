"""Contract tests for the campaign service HTTP API.

A real server on an ephemeral port, a real stdlib client — these pin
the wire contract: status codes, JSON shapes and error bodies for
every route, and the acceptance criterion that a POST-submitted
campaign produces metrics bit-identical to running the same spec
directly through :class:`CampaignRunner`.
"""

import json

import pytest

from repro.fleet import CampaignRunner, campaign_digest, spec_from_dict
from repro.service import CampaignService, ServiceClient

pytestmark = pytest.mark.service

JOB_FIELDS = {
    "id", "spec", "client", "state", "seq", "started_seq", "finished_seq",
    "attempts", "cancel_requested", "error", "result", "shards_total",
    "created", "updated",
}


def _spec(groups=48, shards=4, seed=13, policy="weekly", window=84.0):
    """Tiny campaign (sub-50ms): explicit latent windows skip MLET."""
    return {
        "fleet": {
            "groups": groups,
            "disks_per_group": 4,
            "mttr_hours": 36.0,
            "spare_delay_hours": 6.0,
            "classes": [{"mttf_hours": 2.5e4, "lse_burst_rate_per_hour": 3e-4}],
        },
        "policies": [{"name": policy, "latent_window_hours": window}],
        "mission_years": 6.0,
        "seed": seed,
        "shards": shards,
    }


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    with CampaignService(
        tmp_path_factory.mktemp("service"), port=0, status_interval=0.0
    ) as svc:
        yield svc


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url, client="contract")


def test_healthz(client):
    status, payload = client.health()
    assert status == 200
    assert payload["ok"] is True
    assert set(payload["counts"]) == {
        "queued", "running", "done", "failed", "cancelled"
    }


def test_submit_created_schema(client):
    status, payload = client.submit(_spec(seed=100))
    assert status == 201
    assert payload["created"] is True
    job = payload["job"]
    assert set(job) == JOB_FIELDS
    assert job["state"] in ("queued", "running", "done")
    assert job["client"] == "contract"
    assert job["shards_total"] == 4
    # The id is the campaign digest of the canonical spec.
    assert job["id"] == campaign_digest(spec_from_dict(job["spec"]))


def test_duplicate_submit_same_job_no_new_work(client):
    spec = _spec(seed=101)
    status1, p1 = client.submit(spec)
    assert status1 == 201
    job_id = p1["job"]["id"]
    client.wait(job_id, timeout=30)
    # Same spec again -- and again with cosmetic JSON differences
    # (int-vs-float) that must canonicalize to the same digest.
    cosmetic = json.loads(json.dumps(spec))
    cosmetic["mission_years"] = 6
    for resubmission in (spec, cosmetic):
        status2, p2 = client.submit(resubmission)
        assert status2 == 200
        assert p2["created"] is False
        assert p2["job"]["id"] == job_id
        assert p2["job"]["attempts"] == 1  # answered from the existing job
        assert p2["job"]["state"] == "done"


def test_unknown_job_404(client):
    for fetch in (client.job, client.cancel):
        status, payload = fetch("no-such-job")
        assert status == 404
        assert "unknown campaign" in payload["error"]
    status, _raw = client.report("no-such-job")
    assert status == 404


def test_malformed_spec_400(client):
    cases = [
        ({"fleet": {}}, "missing fields"),
        ({"policies": []}, "missing fields"),
        ({"fleet": {}, "policies": []}, "non-empty list"),
        ({"fleet": {"groups": -1}, "policies": [{}]}, "groups"),
        ({"fleet": {"bogus": 1}, "policies": [{}]}, "unknown fields"),
        ({"fleet": {"groups": "many"}, "policies": [{}]}, "integer"),
    ]
    for spec, needle in cases:
        status, payload = client.submit(spec)
        assert status == 400, spec
        assert needle in payload["error"], (spec, payload)


def test_non_json_body_400(client):
    import http.client

    conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
    try:
        conn.request("POST", "/campaigns", body=b"{nope")
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert payload["error"] == "body is not valid JSON"
    finally:
        conn.close()


def test_wrong_method_405(client):
    status, payload = client._request("PUT", "/campaigns", body={})
    assert status == 405
    assert "error" in payload
    status, _ = client._request("POST", "/healthz", body={})
    assert status == 405


def test_unknown_route_404(client):
    status, payload = client._request("GET", "/nope")
    assert status == 404
    assert "no such route" in payload["error"]


def test_job_detail_has_status_and_paths(client):
    _, p = client.submit(_spec(seed=102))
    job_id = p["job"]["id"]
    client.wait(job_id, timeout=30)
    status, detail = client.job(job_id)
    assert status == 200
    assert set(detail) == {"job", "status", "paths"}
    assert detail["status"]["state"] == "done"
    assert detail["paths"]["events"].endswith("events.jsonl")


def test_report_html(client):
    _, p = client.submit(_spec(seed=103))
    job_id = p["job"]["id"]
    client.wait(job_id, timeout=30)
    status, html = client.report(job_id)
    assert status == 200
    assert b"<!DOCTYPE html>" in html or b"<html" in html


def test_cancel_terminal_is_idempotent_noop(client):
    _, p = client.submit(_spec(seed=104))
    job_id = p["job"]["id"]
    client.wait(job_id, timeout=30)
    for _ in range(2):
        status, payload = client.cancel(job_id)
        assert status == 200
        assert payload["job"]["state"] == "done"  # not clobbered


def test_events_bad_offset_400(client):
    _, p = client.submit(_spec(seed=105))
    job_id = p["job"]["id"]
    status, payload = client._request(
        "GET", f"/campaigns/{job_id}/events", query={"offset": "x"}
    )
    assert status == 400
    status, payload = client._request(
        "GET", f"/campaigns/{job_id}/events", query={"offset": -5}
    )
    assert status == 400


def test_submitted_metrics_bit_identical_to_direct_run(client):
    """The acceptance criterion: service-run == direct CampaignRunner."""
    spec_dict = _spec(seed=106, groups=96, shards=6)
    _, p = client.submit(spec_dict)
    job = client.wait(p["job"]["id"], timeout=60)
    assert job["state"] == "done"
    direct = CampaignRunner(spec_from_dict(spec_dict)).run().metrics_dict()
    # The job record crossed JSON (tuples become lists): compare both
    # sides through the same canonical round-trip.
    assert job["result"]["metrics"] == json.loads(json.dumps(direct))
    assert job["result"]["completeness"] == 1.0
    assert job["result"]["shards_completed"] == 6
