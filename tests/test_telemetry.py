"""Tests for the telemetry subsystem (repro.telemetry).

Three properties matter most and get the heaviest coverage:

* telemetry is *passive* — experiment results are bit-identical with a
  :class:`Recorder` attached, with the :data:`NULL_SINK`, and with no
  sink at all;
* per-task telemetry survives the process pool and merges to the same
  fleet summary serially and in parallel;
* the Chrome trace export round-trips through ``json.load`` with a
  queued -> dispatched -> completed span pair for every served request.
"""

import dataclasses
import io
import json
import math

import pytest

from repro.analysis.detection import (
    detection_sweep_task,
    run_detection_experiment,
    shrunk_spec,
)
from repro.core import SequentialScrub, Scrubber
from repro.disk import DiskCommand, Drive, hitachi_ultrastar_15k450
from repro.parallel import SweepRunner
from repro.sched import BlockDevice, IORequest, NoopScheduler
from repro.sim import Simulation
from repro.telemetry import (
    NULL_SINK,
    Histogram,
    MetricsRegistry,
    NullSink,
    Recorder,
    TelemetrySink,
    error_log_records,
    format_table,
    merge_snapshots,
    request_log_records,
    with_pid,
    write_chrome_trace,
    write_jsonl,
)


def small_spec():
    return shrunk_spec(hitachi_ultrastar_15k450(), cylinders=20)


def run_traced_scrub(telemetry=None, horizon=0.5, max_log_records=None):
    """A small scrub + foreground run; returns (device, scrubber)."""
    sim = Simulation(telemetry=telemetry)
    device = BlockDevice(
        sim,
        Drive(small_spec(), cache_enabled=False),
        NoopScheduler(),
        max_log_records=max_log_records,
    )
    scrubber = Scrubber(sim, device, SequentialScrub(), request_bytes=64 * 1024)
    scrubber.start()
    for i in range(20):
        device.submit(
            IORequest(DiskCommand.read(i * 100, 8), source="foreground")
        )
    sim.run(until=horizon)
    return device, scrubber


# -- metrics registry ---------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("b").set(2.5)
        assert registry.counter("a").value == 5
        assert registry.gauge("b").value == 2.5
        assert len(registry) == 2

    def test_histogram_stats(self):
        hist = Histogram("t")
        for value in (0.001, 0.002, 0.004, 0.1):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 0.001
        assert hist.max == 0.1
        assert hist.mean == pytest.approx(0.02675)
        # Percentiles are bucket upper bounds clamped to the true max.
        assert 0.001 <= hist.percentile(0.25) <= 0.0018
        assert hist.percentile(1.0) == 0.1
        assert hist.percentile(0.0) >= hist.min / 1.78

    def test_histogram_under_and_overflow(self):
        hist = Histogram("t")
        hist.observe(1e-9)
        hist.observe(1e9)
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 1
        assert hist.percentile(1.0) == 1e9

    def test_histogram_percentile_validates(self):
        with pytest.raises(ValueError):
            Histogram("t").percentile(1.5)

    def test_empty_histogram_snapshot_is_finite(self):
        registry = MetricsRegistry()
        registry.histogram("t")
        snap = registry.snapshot()["histograms"]["t"]
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        assert math.isfinite(snap["min"])

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)  # must not raise

    def test_merge_snapshots(self):
        first = MetricsRegistry()
        first.counter("n").inc(2)
        first.gauge("g").set(1.0)
        first.histogram("h").observe(0.01)
        second = MetricsRegistry()
        second.counter("n").inc(3)
        second.gauge("g").set(4.0)
        second.histogram("h").observe(0.04)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["counters"]["n"] == 5
        assert merged["gauges"]["g"] == 4.0
        hist = merged["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["min"] == 0.01 and hist["max"] == 0.04

    def test_merge_skips_empty_histogram_min_max(self):
        empty = MetricsRegistry()
        empty.histogram("h")
        full = MetricsRegistry()
        full.histogram("h").observe(0.5)
        merged = merge_snapshots([empty.snapshot(), full.snapshot()])
        assert merged["histograms"]["h"]["min"] == 0.5
        assert merged["histograms"]["h"]["max"] == 0.5

    def test_merge_is_order_independent(self):
        parts = []
        for i in range(3):
            registry = MetricsRegistry()
            registry.counter("n").inc(i + 1)
            registry.histogram("h").observe(0.001 * (i + 1))
            parts.append(registry.snapshot())
        assert merge_snapshots(parts) == merge_snapshots(reversed(parts))

    def test_format_table(self):
        registry = MetricsRegistry()
        registry.counter("device.completed").inc(7)
        registry.gauge("scrub.progress").set(0.25)
        registry.histogram("lat").observe(0.002)
        text = format_table(registry.snapshot(), title="run")
        assert "== run ==" in text
        assert "device.completed" in text
        assert "p95" in text
        assert format_table({}) == "(no metrics recorded)"


# -- sinks --------------------------------------------------------------------


class TestSinks:
    def test_null_sink_disabled_and_silent(self):
        assert NULL_SINK.enabled is False
        assert isinstance(NULL_SINK, NullSink)
        NULL_SINK.instant(0.0, "x", "y", {})  # all hooks are no-ops
        NULL_SINK.engine_run(10, 1.0, 0.1)
        assert len(NULL_SINK.metrics) == 0

    def test_base_sink_hooks_are_noops(self):
        sink = TelemetrySink()
        sink.scrub_progress(0.0, "scrubber", 0.5)
        sink.fault_event(0.0, "remap", 7)
        assert sink.enabled is False

    def test_recorder_captures_lifecycle(self):
        recorder = Recorder()
        device, _ = run_traced_scrub(telemetry=recorder)
        assert recorder.enabled is True
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["device.completed"] == len(device.log)
        assert counters["device.completed"] == len(recorder.requests)
        assert counters["scrub.passes_started"] >= 1
        assert counters["engine.runs"] == 1
        sources = {r[7] for r in recorder.requests}
        assert {"foreground", "scrubber"} <= sources

    def test_recorder_wall_time_opt_in(self):
        recorder = Recorder()  # default: deterministic, no wall clock
        run_traced_scrub(telemetry=recorder)
        gauges = recorder.metrics.snapshot()["gauges"]
        assert "engine.wall_seconds" not in gauges
        timed = Recorder(wall_time=True)
        run_traced_scrub(telemetry=timed)
        assert timed.metrics.snapshot()["gauges"]["engine.wall_seconds"] > 0


# -- determinism --------------------------------------------------------------


def strip_telemetry(result):
    return dataclasses.replace(result, telemetry=None)


class TestDeterminism:
    def test_recorder_does_not_perturb_results(self):
        kwargs = dict(algorithm="staggered", horizon=2.0, seed=5,
                      foreground=True)
        bare = run_detection_experiment(small_spec(), **kwargs)
        null = run_detection_experiment(
            small_spec(), telemetry=NULL_SINK, **kwargs
        )
        recorded = run_detection_experiment(
            small_spec(), telemetry=Recorder(), **kwargs
        )
        assert bare == null == recorded

    def test_recorder_snapshot_reproducible(self):
        snaps = []
        for _ in range(2):
            recorder = Recorder()
            run_detection_experiment(
                small_spec(), horizon=1.5, seed=3, telemetry=recorder
            )
            snaps.append(recorder.export())
        assert snaps[0] == snaps[1]

    def test_serial_and_parallel_telemetry_identical(self):
        param_sets = [
            dict(drive="ultrastar", cylinders=20, algorithm=algorithm,
                 horizon=1.5, seed=7, collect_telemetry=True)
            for algorithm in ("sequential", "staggered")
        ]
        serial = SweepRunner(workers=0).map(detection_sweep_task, param_sets)
        parallel = SweepRunner(workers=2).map(detection_sweep_task, param_sets)
        for s, p in zip(serial, parallel):
            assert s.telemetry is not None
            assert s.telemetry == p.telemetry
            assert strip_telemetry(s) == strip_telemetry(p)
        assert SweepRunner.merge_task_telemetry(
            serial
        ) == SweepRunner.merge_task_telemetry(parallel)

    def test_collect_telemetry_does_not_change_results(self):
        base = dict(drive="ultrastar", cylinders=20, horizon=1.5, seed=7)
        plain = detection_sweep_task(**base)
        collected = detection_sweep_task(collect_telemetry=True, **base)
        assert plain == strip_telemetry(collected)

    def test_engine_event_order_identical_with_recorder(self):
        # The instrumented twin of the engine's fast loop must fire
        # events in exactly the same order as the untouched one.
        import repro.sim as kernel
        from tests.test_sim_determinism import run_scenario

        class recorder_kernel:
            Interrupt = kernel.Interrupt

            @staticmethod
            def Simulation():
                return kernel.Simulation(telemetry=Recorder())

        assert run_scenario(kernel) == run_scenario(recorder_kernel)

    def test_merge_task_telemetry_counts_fleet_totals(self):
        results = [
            detection_sweep_task(
                drive="ultrastar", cylinders=20, horizon=1.0, seed=s,
                collect_telemetry=True,
            )
            for s in (1, 2)
        ]
        fleet = SweepRunner.merge_task_telemetry(results)
        per_task = [r.telemetry["metrics"]["counters"] for r in results]
        assert fleet["counters"]["device.completed"] == sum(
            c["device.completed"] for c in per_task
        )


# -- chrome trace export ------------------------------------------------------


class TestChromeTrace:
    def test_round_trip_with_span_per_request(self, tmp_path):
        recorder = Recorder()
        device, _ = run_traced_scrub(telemetry=recorder)
        out = tmp_path / "trace.json"
        count = write_chrome_trace(str(out), recorder.chrome_events())
        data = json.load(open(out))  # must round-trip
        events = data["traceEvents"]
        assert len(events) == count
        waits = [e for e in events if e["ph"] == "X" and e["cat"] == "queue"]
        spans = [e for e in events if e["ph"] == "X" and e["cat"] == "service"]
        served = len(device.log)
        assert len(waits) == served
        assert len(spans) == served
        for span in spans:
            assert span["dur"] >= 0
            assert {"lbn", "sectors", "source", "status"} <= set(span["args"])
        # wait span end == service span start for the same request
        assert waits[0]["ts"] + waits[0]["dur"] == pytest.approx(spans[0]["ts"])

    def test_thread_per_source_and_progress_counters(self):
        recorder = Recorder()
        run_traced_scrub(telemetry=recorder)
        events = recorder.chrome_events(process_name="run")
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"foreground", "scrubber"} <= names
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert all(0.0 <= e["args"]["fraction"] <= 1.0 for e in counters)

    def test_with_pid_rehomes_events(self):
        recorder = Recorder()
        run_traced_scrub(telemetry=recorder)
        moved = with_pid(recorder.chrome_events(), pid=3, process_name="task3")
        assert all(e["pid"] == 3 for e in moved)
        meta = [e for e in moved if e.get("name") == "process_name"]
        assert meta[0]["args"] == {"name": "task3"}

    def test_write_to_file_object(self):
        buffer = io.StringIO()
        write_chrome_trace(buffer, [])
        assert json.loads(buffer.getvalue()) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }


# -- request log ring buffer --------------------------------------------------


class TestRequestLogRing:
    def test_default_is_unbounded(self):
        device, _ = run_traced_scrub()
        assert device.log.max_records is None
        assert device.log.dropped == 0

    def test_ring_keeps_most_recent(self):
        device, _ = run_traced_scrub(max_log_records=10)
        assert len(device.log) == 10
        assert device.log.dropped > 0
        completes = [r.complete_time for r in device.log.requests()]
        assert completes == sorted(completes)

    def test_ring_and_unbounded_agree_on_tail(self):
        full, _ = run_traced_scrub()
        ring, _ = run_traced_scrub(max_log_records=10)
        tail = full.log.requests()[-10:]
        assert [r.complete_time for r in ring.log.requests()] == [
            r.complete_time for r in tail
        ]
        assert ring.log.dropped == len(full.log) - 10

    def test_rejects_non_positive(self):
        from repro.sched.device import RequestLog

        with pytest.raises(ValueError):
            RequestLog(max_records=0)


# -- jsonl export -------------------------------------------------------------


class TestJsonlExport:
    def test_request_log_jsonl(self, tmp_path):
        device, _ = run_traced_scrub()
        out = tmp_path / "requests.jsonl"
        count = write_jsonl(str(out), request_log_records(device.log))
        lines = out.read_text().splitlines()
        assert count == len(lines) == len(device.log)
        record = json.loads(lines[0])
        assert {"submit", "dispatch", "complete", "opcode", "lbn",
                "source", "status"} <= set(record)

    def test_error_log_jsonl(self):
        from repro.faults import MediaFaults, build_model

        spec = small_spec()
        plan = build_model(
            "bursts", inter_burst_mean=0.5, in_burst_time_mean=0.01
        ).generate(Drive(spec, cache_enabled=False).total_sectors, 2.0, 3)
        assert len(plan.errors) > 0
        faults = MediaFaults(plan)
        sim = Simulation()
        drive = Drive(spec, cache_enabled=False)
        drive.install_faults(faults)
        device = BlockDevice(sim, drive, NoopScheduler())
        scrubber = Scrubber(sim, device, SequentialScrub())
        scrubber.start()
        sim.run(until=2.0)
        faults.finalize(2.0)
        buffer = io.StringIO()
        count = write_jsonl(buffer, error_log_records(faults.log))
        assert count == len(faults.log.records) > 0
        for line in buffer.getvalue().splitlines():
            assert {"time", "kind", "lbn"} <= set(json.loads(line))


# -- cli ----------------------------------------------------------------------


class TestCli:
    def test_trace_conflicting_sources_exit_2(self, capsys):
        from repro.cli import main

        code = main(["trace", "--trace", "x.csv", "--synthetic", "MSRsrc11"])
        assert code == 2
        err = capsys.readouterr().err
        assert "mutually exclusive" in err

    def test_trace_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        code = main([
            "trace", "--drive", "ultrastar", "--cylinders", "20",
            "--horizon", "0.5", "--foreground",
            "--out", str(out), "--jsonl", str(tmp_path / "x"),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "run telemetry" in stdout
        assert "trace events" in stdout
        data = json.load(open(out))
        assert any(e["ph"] == "X" for e in data["traceEvents"])
        assert (tmp_path / "x.requests.jsonl").exists()

    def test_throughput_telemetry_flags(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "tp.json"
        code = main([
            "throughput", "--drive", "ultrastar", "--horizon", "1",
            "--telemetry", "--trace-out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "run telemetry" in stdout
        assert json.load(open(out))["traceEvents"]

    def test_detect_telemetry_merges_fleet(self, capsys):
        from repro.cli import main

        code = main([
            "detect", "--cylinders", "20", "--horizon", "1",
            "--algorithms", "sequential", "--telemetry",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "fleet telemetry (2 runs, merged)" in stdout
        assert "device.completed" in stdout

    def test_detect_help_mentions_cache_bug(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["detect", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "cache-bug interaction" in out
        assert "--no-drive-cache" in out
