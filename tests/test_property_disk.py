"""Property-based tests for the disk substrate (hypothesis)."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.disk import DiskCommand, DiskGeometry, Drive, SeekModel, Zone
from repro.disk.cache import DiskCache
from repro.disk.models import hitachi_ultrastar_15k450

geometries = st.builds(
    DiskGeometry,
    heads=st.integers(1, 8),
    zones=st.lists(
        st.builds(
            Zone,
            cylinders=st.integers(1, 20),
            sectors_per_track=st.integers(1, 50),
        ),
        min_size=1,
        max_size=4,
    ),
    track_skew=st.floats(0.0, 0.99),
)


class TestGeometryProperties:
    @given(geometry=geometries, data=st.data())
    @settings(max_examples=200)
    def test_locate_roundtrip_is_injective(self, geometry, data):
        """Two distinct LBNs never map to the same physical location."""
        lbn_a = data.draw(st.integers(0, geometry.total_sectors - 1))
        lbn_b = data.draw(st.integers(0, geometry.total_sectors - 1))
        loc_a, loc_b = geometry.locate(lbn_a), geometry.locate(lbn_b)
        key_a = (loc_a.cylinder, loc_a.head, loc_a.sector)
        key_b = (loc_b.cylinder, loc_b.head, loc_b.sector)
        assert (lbn_a == lbn_b) == (key_a == key_b)

    @given(geometry=geometries, data=st.data())
    @settings(max_examples=200)
    def test_locate_fields_in_range(self, geometry, data):
        lbn = data.draw(st.integers(0, geometry.total_sectors - 1))
        loc = geometry.locate(lbn)
        assert 0 <= loc.cylinder < geometry.cylinders
        assert 0 <= loc.head < geometry.heads
        assert 0 <= loc.sector < loc.sectors_per_track
        assert 0 <= loc.track_index < geometry.tracks
        assert 0.0 <= geometry.angle_of(loc) < 1.0

    @given(geometry=geometries)
    @settings(max_examples=100)
    def test_sequential_lbns_are_physically_contiguous(self, geometry):
        """Consecutive LBNs on the same track differ by one sector."""
        for lbn in range(min(geometry.total_sectors - 1, 64)):
            a, b = geometry.locate(lbn), geometry.locate(lbn + 1)
            if a.track_index == b.track_index:
                assert b.sector == a.sector + 1


class TestSeekProperties:
    @given(
        t2t=st.floats(1e-5, 1e-3),
        gap1=st.floats(1e-4, 5e-3),
        gap2=st.floats(1e-4, 5e-3),
        cylinders=st.integers(100, 200_000),
    )
    @settings(max_examples=150)
    def test_seek_times_anchor_and_stay_positive(
        self, t2t, gap1, gap2, cylinders
    ):
        average = t2t + gap1
        full = average + gap2
        model = SeekModel.from_specs(t2t, average, full, cylinders)
        assert model.time(0) == 0.0
        assert model.time(1) == pytest.approx(t2t, rel=1e-6)
        assert model.time(cylinders - 1) == pytest.approx(full, rel=1e-6)
        for distance in (1, 2, 10, cylinders // 2, cylinders - 1):
            assert model.time(distance) >= 0.0


class TestCacheProperties:
    @given(
        inserts=st.lists(
            st.tuples(st.integers(0, 5000), st.integers(1, 200)),
            min_size=1,
            max_size=30,
        ),
        probe=st.tuples(st.integers(0, 5000), st.integers(1, 200)),
    )
    @settings(max_examples=200)
    def test_hits_only_for_inserted_data(self, inserts, probe):
        """A hit implies the probed range was covered by some insert's
        data-plus-read-ahead window (no phantom data)."""
        cache = DiskCache(num_segments=4, segment_sectors=10_000,
                          read_ahead_sectors=100)
        windows = []
        for i, (lbn, sectors) in enumerate(inserts):
            cache.insert(lbn, sectors, now=float(i), fill_rate=1e9)
            windows.append((lbn, lbn + sectors + 100))
        lbn, sectors = probe
        ready = cache.lookup(lbn, sectors, now=1e6)
        if ready is not None:
            assert any(
                start <= lbn and lbn + sectors <= end + 100
                for start, end in windows
            )

    @given(
        segments=st.integers(1, 8),
        ops=st.lists(st.integers(0, 100_000), min_size=1, max_size=50),
    )
    @settings(max_examples=100)
    def test_segment_count_never_exceeds_capacity(self, segments, ops):
        cache = DiskCache(num_segments=segments, segment_sectors=1000,
                          read_ahead_sectors=10)
        for i, lbn in enumerate(ops):
            cache.insert(lbn, 8, now=float(i), fill_rate=1e9)
            assert len(cache) <= segments


class TestDriveProperties:
    @given(
        commands=st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "verify"]),
                st.integers(0, 1000),  # lbn bucket
                st.integers(1, 64),  # sectors
                st.floats(0.0, 0.01),  # think time
            ),
            min_size=1,
            max_size=25,
        ),
        cache_enabled=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_always_advances_and_breakdown_adds_up(
        self, commands, cache_enabled
    ):
        drive = Drive(hitachi_ultrastar_15k450(), cache_enabled=cache_enabled)
        now = 0.0
        for op, bucket, sectors, think in commands:
            lbn = bucket * (drive.total_sectors // 1001)
            command = getattr(DiskCommand, op)(lbn, sectors)
            breakdown = drive.service(command, now)
            assert breakdown.finish > now
            assert breakdown.total == pytest.approx(
                breakdown.overhead
                + breakdown.seek
                + breakdown.rotation
                + breakdown.transfer,
                abs=1e-12,
            )
            assert breakdown.seek >= 0
            assert breakdown.rotation >= 0
            assert breakdown.transfer >= 0
            now = breakdown.finish + think

    @given(sectors=st.integers(1, 4096))
    @settings(max_examples=40, deadline=None)
    def test_verify_duration_bounded_by_mechanics(self, sectors):
        """A VERIFY can never finish faster than its media transfer nor
        slower than full-stroke seek + one rotation per track touched."""
        drive = Drive(hitachi_ultrastar_15k450())
        breakdown = drive.service(
            DiskCommand.verify(drive.total_sectors // 2, sectors), 0.0
        )
        spt = drive.geometry.sectors_per_track_at(drive.total_sectors // 2)
        period = drive.rotation.period
        min_time = (sectors / spt) * period * 0.5
        tracks = sectors // spt + 2
        max_time = (
            drive.spec.full_stroke_seek
            + tracks * (period + drive.spec.head_switch_time)
            + (sectors / spt) * period
            + 0.01
        )
        assert min_time <= breakdown.total <= max_time
