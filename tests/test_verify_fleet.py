"""Tests for the fleet conservation laws and journal audit.

Every check is exercised both ways: a genuine campaign artifact passes
untouched, and each class of tampering — a group counted in two
states, loss modes that don't sum, shard ranges that overlap, a
checkpoint key that stopped matching its spec — raises a structured
:class:`InvariantViolation` naming the broken invariant.
"""

import copy
import math

import pytest

from repro.fleet import (
    CampaignJournal,
    CampaignRunner,
    CampaignSpec,
    DriveClass,
    FleetSpec,
    ScrubPolicySpec,
    fleet_shard_task,
)
from repro.verify import (
    InvariantViolation,
    check_campaign_journal,
    check_fleet_conservation,
    check_shard_result,
)


def _spec(groups=40, shards=4):
    return CampaignSpec(
        fleet=FleetSpec(
            groups=groups,
            disks_per_group=4,
            mttr_hours=24.0,
            spare_delay_hours=6.0,
            classes=(
                DriveClass(mttf_hours=2.0e4, lse_burst_rate_per_hour=2e-4),
            ),
        ),
        policies=(ScrubPolicySpec(name="weekly", latent_window_hours=84.0),),
        mission_years=5.0,
        seed=5,
        shards=shards,
    )


@pytest.fixture(scope="module")
def spec():
    return _spec()


@pytest.fixture(scope="module")
def shards(spec):
    params = CampaignRunner.shard_param_sets(spec)
    return [fleet_shard_task(**p) for p in params]


def _expect(invariant, fn, *args, **kwargs):
    with pytest.raises(InvariantViolation) as excinfo:
        fn(*args, **kwargs)
    assert excinfo.value.invariant == invariant


class TestShardResult:
    def test_genuine_shard_passes(self, spec, shards):
        for shard in shards:
            check_shard_result(spec, shard)

    def test_state_double_counting_is_caught(self, spec, shards):
        bad = copy.deepcopy(shards[0])
        bad["policies"][0]["states"]["ok"] += 1
        _expect("fleet-state-conservation", check_shard_result, spec, bad)

    def test_unknown_state_is_caught(self, spec, shards):
        bad = copy.deepcopy(shards[0])
        bad["policies"][0]["states"]["limbo"] = 0
        _expect("fleet-state-conservation", check_shard_result, spec, bad)

    def test_loss_mode_sum_mismatch_is_caught(self, spec, shards):
        bad = copy.deepcopy(shards[0])
        bad["policies"][0]["losses"] += 1
        _expect("fleet-state-conservation", check_shard_result, spec, bad)

    def test_lost_state_vs_loss_events_mismatch_is_caught(self, spec, shards):
        bad = copy.deepcopy(shards[0])
        block = bad["policies"][0]
        block["losses"] += 1
        block["losses_by_mode"]["double"] += 1
        _expect("fleet-state-conservation", check_shard_result, spec, bad)

    def test_rebuilds_exceeding_failures_is_caught(self, spec, shards):
        bad = copy.deepcopy(shards[0])
        block = bad["policies"][0]
        block["rebuilds_completed"] = block["drive_failures"] + 1
        _expect("fleet-state-conservation", check_shard_result, spec, bad)

    def test_observed_hours_beyond_mission_is_caught(self, spec, shards):
        bad = copy.deepcopy(shards[0])
        block = bad["policies"][0]
        block["observed_group_hours"] = (
            block["groups"] * spec.mission_years * 8760.0 * 2
        )
        block["group_hours"] = [
            h * 2 for h in block["group_hours"]
        ]
        _expect("fleet-state-conservation", check_shard_result, spec, bad)

    def test_group_hours_ledger_mismatch_is_caught(self, spec, shards):
        bad = copy.deepcopy(shards[0])
        bad["policies"][0]["group_hours"][0] += 1.0
        _expect("fleet-state-conservation", check_shard_result, spec, bad)

    def test_missing_policy_block_is_caught(self, spec, shards):
        bad = copy.deepcopy(shards[0])
        bad["policies"] = []
        _expect("fleet-shard-shape", check_shard_result, spec, bad)


class TestFleetConservation:
    def test_complete_fleet_passes(self, spec, shards):
        check_fleet_conservation(spec, shards)

    def test_gap_rejected_unless_partial(self, spec, shards):
        partial = shards[:-1]
        _expect("fleet-conservation", check_fleet_conservation, spec, partial)
        check_fleet_conservation(spec, partial, allow_partial=True)

    def test_overlap_is_caught_even_when_partial(self, spec, shards):
        overlapping = [shards[0], copy.deepcopy(shards[0])]
        _expect(
            "fleet-conservation",
            check_fleet_conservation, spec, overlapping, True,
        )

    def test_out_of_range_shard_is_caught(self, spec, shards):
        bad = copy.deepcopy(shards[-1])
        bad["group_count"] += spec.fleet.groups
        # Scale the per-policy ledgers to stay internally consistent so
        # only the fleet-level range check can fire.
        _expect("fleet-shard-shape", check_fleet_conservation, spec,
                [dict(bad, group_start=spec.fleet.groups)], True)


class TestJournalAudit:
    def test_genuine_journal_verifies_every_checkpoint(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, journal_dir=tmp_path).run()
        assert check_campaign_journal(tmp_path, spec) == 4

    def test_foreign_spec_is_rejected(self, tmp_path):
        CampaignRunner(_spec(), journal_dir=tmp_path).run()
        _expect(
            "checkpoint-digest",
            check_campaign_journal, tmp_path, _spec(groups=44),
        )

    def test_tampered_manifest_key_is_caught(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, journal_dir=tmp_path).run()
        journal = CampaignJournal(tmp_path, spec)
        key = journal.completed()[1]
        forged = ("0" * 8) + key[8:]
        journal._manifest["shards"]["1"] = forged
        journal._write_manifest()
        _expect("checkpoint-digest", check_campaign_journal, tmp_path, spec)

    def test_missing_checkpoint_file_is_caught(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, journal_dir=tmp_path).run()
        journal = CampaignJournal(tmp_path, spec)
        journal.cache._path(journal.completed()[2]).unlink()
        _expect("checkpoint-digest", check_campaign_journal, tmp_path, spec)

    def test_corrupt_checkpoint_is_caught_not_trusted(self, tmp_path):
        spec = _spec()
        CampaignRunner(spec, journal_dir=tmp_path).run()
        journal = CampaignJournal(tmp_path, spec)
        path = journal.cache._path(journal.completed()[0])
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF
        path.write_bytes(bytes(blob))
        _expect("checkpoint-digest", check_campaign_journal, tmp_path, spec)
