"""Property-based tests for the simulation kernel and trace tooling."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.sim import Simulation
from repro.stats import acf
from repro.traces.idle import idle_intervals


class TestEngineProperties:
    @given(
        delays=st.lists(st.floats(0, 100), min_size=1, max_size=50),
    )
    @settings(max_examples=200)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulation()
        fired = []
        for delay in delays:
            sim.timeout(delay).callbacks.append(
                lambda ev: fired.append(sim.now)
            )
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert sim.now == max(delays)

    @given(
        delays=st.lists(st.floats(0.001, 50), min_size=1, max_size=30),
    )
    @settings(max_examples=150)
    def test_sequential_process_accumulates_delays(self, delays):
        sim = Simulation()

        def proc(sim):
            for delay in delays:
                yield sim.timeout(delay)
            return sim.now

        p = sim.process(proc(sim))
        assert sim.run(until=p) == pytest.approx(sum(delays))

    @given(
        counts=st.integers(1, 40),
        delay=st.floats(0.001, 10),
    )
    @settings(max_examples=100)
    def test_parallel_processes_all_complete(self, counts, delay):
        sim = Simulation()
        done = []

        def proc(sim, i):
            yield sim.timeout(delay * (i + 1))
            done.append(i)

        for i in range(counts):
            sim.process(proc(sim, i))
        sim.run()
        assert sorted(done) == list(range(counts))


class TestIdleExtractionProperties:
    arrivals = st.lists(
        st.floats(0, 1e4, allow_nan=False), min_size=2, max_size=200
    ).map(lambda xs: np.sort(np.asarray(xs)))

    @given(times=arrivals, service=st.floats(1e-6, 10.0))
    @settings(max_examples=200)
    def test_idle_time_bounded_by_span(self, times, service):
        starts, durations = idle_intervals(
            times, np.full(len(times), service)
        )
        span = times[-1] - times[0]
        assert durations.sum() <= span + 1e-9
        assert np.all(durations > 0)
        # Idle intervals start inside the observation window.
        assert np.all(starts >= times[0])
        assert np.all(starts + durations <= times[-1] + 1e-9)

    @given(times=arrivals, service=st.floats(1e-6, 10.0))
    @settings(max_examples=200)
    def test_idle_intervals_are_disjoint_and_ordered(self, times, service):
        starts, durations = idle_intervals(
            times, np.full(len(times), service)
        )
        ends = starts + durations
        assert np.all(starts[1:] >= ends[:-1] - 1e-9)

    @given(times=arrivals)
    @settings(max_examples=100)
    def test_zero_service_idle_equals_interarrivals(self, times):
        starts, durations = idle_intervals(times, np.zeros(len(times)))
        gaps = np.diff(times)
        assert durations.sum() == pytest.approx(gaps.sum())


class TestAcfProperties:
    @given(
        x=st.lists(
            st.floats(-1e3, 1e3, allow_nan=False), min_size=8, max_size=300
        ).map(np.asarray),
    )
    @settings(max_examples=200)
    def test_acf_bounds(self, x):
        if np.std(x) == 0:
            return  # degenerate; rejected by acf
        values = acf(x, min(5, len(x) - 1))
        assert values[0] == pytest.approx(1.0)
        assert np.all(np.abs(values) <= 1.0 + 1e-9)
