"""Tests for deterministic span tracing (PR 8).

Span IDs must be a pure function of (campaign digest, tree path) so
traces from a fresh run and a post-SIGKILL resume overlay exactly;
the recorder must tolerate out-of-order lifecycles and export valid
Chrome trace events even with spans still open.
"""

import json

from repro.obs import Span, SpanRecorder, span_id
from repro.telemetry.trace import write_chrome_trace


class _FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestSpanId:
    def test_deterministic(self):
        a = span_id("digest", "shard", 3, "attempt", 1)
        b = span_id("digest", "shard", 3, "attempt", 1)
        assert a == b

    def test_path_sensitive(self):
        base = span_id("digest", "shard", 3, "attempt", 1)
        assert span_id("digest", "shard", 3, "attempt", 2) != base
        assert span_id("digest", "shard", 4, "attempt", 1) != base
        assert span_id("other", "shard", 3, "attempt", 1) != base

    def test_fits_in_63_bits(self):
        for path in (("a",), ("shard", 0), ("x", 1, "y", 2, "z", "w")):
            sid = span_id("root", *path)
            assert 0 <= sid < 2 ** 63


class TestSpanRecorder:
    def test_begin_end_duration(self):
        clock = _FakeClock()
        rec = SpanRecorder("digest", clock=clock)
        rec.begin("shard 0", "shard", 0, category="attempt", tid=1)
        clock.tick(2.5)
        rec.end("shard", 0, args={"outcome": "ok"})
        (span,) = rec.spans()
        assert span.duration == 2.5
        assert span.args["outcome"] == "ok"
        assert span.tid == 1

    def test_end_unknown_path_is_noop(self):
        rec = SpanRecorder("digest", clock=_FakeClock())
        rec.end("shard", 99)  # never begun
        assert rec.spans() == ()

    def test_timestamps_relative_to_first_span(self):
        clock = _FakeClock(start=5_000.0)
        rec = SpanRecorder("digest", clock=clock)
        rec.begin("campaign", "campaign")
        clock.tick(1.0)
        rec.end("campaign")
        (span,) = rec.spans()
        assert span.start == 0.0
        assert span.end == 1.0

    def test_open_spans_export_as_if_ended_now(self):
        clock = _FakeClock()
        rec = SpanRecorder("digest", clock=clock)
        rec.begin("campaign", "campaign")
        clock.tick(3.0)
        events = rec.chrome_events()
        xs = [e for e in events if e.get("ph") == "X"]
        assert len(xs) == 1
        assert xs[0]["dur"] == 3.0 * 1e6
        # Exporting did not close the span.
        rec.end("campaign")
        assert len(rec.spans()) == 1

    def test_instant_marker(self):
        rec = SpanRecorder("digest", clock=_FakeClock())
        rec.instant("shard 3 death", category="failure", tid=4)
        events = rec.chrome_events()
        markers = [e for e in events if e.get("ph") == "i"]
        assert len(markers) == 1
        assert markers[0]["name"] == "shard 3 death"

    def test_add_timed_phase(self):
        rec = SpanRecorder("digest", clock=_FakeClock())
        rec.add_timed(
            "policy weekly", 1.0, 0.25,
            "shard", 0, "attempt", 1, "phase", "weekly",
            tid=1,
        )
        (span,) = rec.spans()
        assert span.duration == 0.25
        assert span.sid == span_id(
            "digest", "shard", 0, "attempt", 1, "phase", "weekly"
        )

    def test_thread_metadata_events(self):
        rec = SpanRecorder("digest", clock=_FakeClock())
        rec.name_thread(0, "campaign")
        rec.name_thread(1, "shard 0")
        events = rec.chrome_events(process_name="fleet")
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in meta}
        assert names["process_name"] == "fleet"
        assert [e["args"]["name"] for e in meta if e["name"] == "thread_name"] \
            == ["campaign", "shard 0"]

    def test_export_roundtrips_through_trace_writer(self, tmp_path):
        clock = _FakeClock()
        rec = SpanRecorder("digest", clock=clock)
        rec.begin("campaign", "campaign", tid=0)
        rec.begin("shard 0 attempt 1", "shard", 0, "attempt", 1, tid=1)
        clock.tick(0.5)
        rec.end("shard", 0, "attempt", 1)
        rec.end("campaign")
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), rec.chrome_events())
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 2
        # Every duration span carries its deterministic ID for diffing.
        assert all(len(e["args"]["span_id"]) == 16 for e in xs)

    def test_span_ids_stable_across_recorders(self):
        first = SpanRecorder("digest", clock=_FakeClock())
        second = SpanRecorder("digest", clock=_FakeClock(start=9.9))
        a = first.begin("s", "shard", 1, "attempt", 2)
        b = second.begin("s", "shard", 1, "attempt", 2)
        assert a == b


def test_span_duration_of_open_span_is_zero():
    span = Span(1, "x", "campaign", 0, 10.0)
    assert span.duration == 0.0
