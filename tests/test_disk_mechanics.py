"""Tests for seek and rotation models (repro.disk.mechanics)."""

import pytest

from repro.disk import RotationModel, SeekModel


class TestSeekModel:
    def setup_method(self):
        self.model = SeekModel.from_specs(
            track_to_track=0.2e-3,
            average=3.4e-3,
            full_stroke=6.5e-3,
            cylinders=100_000,
        )

    def test_zero_distance_is_free(self):
        assert self.model.time(0) == 0.0

    def test_fits_anchor_points(self):
        assert self.model.time(1) == pytest.approx(0.2e-3, rel=1e-6)
        assert self.model.time(100_000 // 3) == pytest.approx(3.4e-3, rel=1e-2)
        assert self.model.time(99_999) == pytest.approx(6.5e-3, rel=1e-6)

    def test_monotone_over_typical_range(self):
        times = [self.model.time(d) for d in range(1, 99_999, 997)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            self.model.time(-1)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            SeekModel.from_specs(3e-3, 2e-3, 6e-3, 1000)  # t2t > average
        with pytest.raises(ValueError):
            SeekModel.from_specs(1e-3, 2e-3, 6e-3, 2)  # too few cylinders

    def test_never_negative(self):
        for d in (1, 2, 5, 10, 100, 10_000):
            assert self.model.time(d) >= 0.0


class TestRotationModel:
    def setup_method(self):
        self.rot = RotationModel(rpm=15000)

    def test_period(self):
        assert self.rot.period == pytest.approx(4e-3)

    def test_angle_wraps(self):
        assert self.rot.angle_at(0.0) == 0.0
        assert self.rot.angle_at(4e-3) == pytest.approx(0.0)
        assert self.rot.angle_at(1e-3) == pytest.approx(0.25)
        assert self.rot.angle_at(5e-3) == pytest.approx(0.25)

    def test_latency_to_target_ahead(self):
        # At t=0 the head is at angle 0; reaching 0.5 takes half a period.
        assert self.rot.latency_to(0.5, 0.0) == pytest.approx(2e-3)

    def test_latency_to_target_just_passed(self):
        # Target barely behind the head costs nearly a full revolution.
        latency = self.rot.latency_to(0.999, 4e-3 * 1.0)
        assert latency == pytest.approx(0.999 * 4e-3)

    def test_latency_zero_when_on_target(self):
        assert self.rot.latency_to(0.25, 1e-3) == pytest.approx(0.0)

    def test_transfer_time_scales_with_sectors(self):
        full = self.rot.transfer_time(500, 500)
        half = self.rot.transfer_time(250, 500)
        assert full == pytest.approx(self.rot.period)
        assert half == pytest.approx(self.rot.period / 2)

    def test_transfer_more_than_track_rejected(self):
        with pytest.raises(ValueError):
            self.rot.transfer_time(501, 500)

    def test_transfer_negative_rejected(self):
        with pytest.raises(ValueError):
            self.rot.transfer_time(-1, 500)

    def test_invalid_rpm(self):
        with pytest.raises(ValueError):
            RotationModel(rpm=0)


def test_missed_rotation_mechanism():
    """The paper's core effect: a small gap after passing a sector costs
    almost a full revolution to come back around."""
    rot = RotationModel(rpm=15000)
    # Suppose a transfer finished exactly at angle 0 at time t0=4ms.
    # 0.3 ms later the host issues the next sequential command, whose
    # target angle is 0 (the sector right after the one just passed).
    t_issue = 4e-3 + 0.3e-3
    latency = rot.latency_to(0.0, t_issue)
    assert latency == pytest.approx(4e-3 - 0.3e-3)
    assert latency > 0.9 * rot.period
