"""Tests for the drive service model (repro.disk.drive)."""

import numpy as np
import pytest

from repro.disk import (
    DiskCommand,
    Drive,
    Interface,
    fujitsu_map3367np,
    fujitsu_max3073rc,
    hitachi_deskstar_7k1000,
    hitachi_ultrastar_15k450,
    wd_caviar_blue,
)


@pytest.fixture
def ultrastar():
    return Drive(hitachi_ultrastar_15k450())


@pytest.fixture
def caviar():
    return Drive(wd_caviar_blue())


def run_sequential(drive, opcode_factory, sectors, count, turnaround=5e-5):
    """Issue back-to-back sequential commands; return per-command times."""
    t, lbn, times = 0.0, 0, []
    for _ in range(count):
        br = drive.service(opcode_factory(lbn, sectors), t)
        times.append(br.total)
        t = br.finish + turnaround
        lbn += sectors
    return times


class TestBasics:
    def test_capacity_matches_spec_ballpark(self, ultrastar):
        assert ultrastar.capacity_bytes == pytest.approx(300e9, rel=0.03)

    def test_out_of_range_command_rejected(self, ultrastar):
        with pytest.raises(ValueError):
            ultrastar.service(
                DiskCommand.read(ultrastar.total_sectors - 1, 2), 0.0
            )

    def test_time_order_enforced(self, ultrastar):
        ultrastar.service(DiskCommand.read(0, 8), 10.0)
        with pytest.raises(ValueError):
            ultrastar.service(DiskCommand.read(0, 8), 5.0)

    def test_service_moves_head(self, ultrastar):
        target = ultrastar.total_sectors // 2
        ultrastar.service(DiskCommand.read(target, 8), 0.0)
        assert ultrastar.head_cylinder == ultrastar.geometry.locate(target).cylinder

    def test_breakdown_components_sum(self, ultrastar):
        br = ultrastar.service(
            DiskCommand.verify(ultrastar.total_sectors // 3, 128), 0.0
        )
        assert br.total == pytest.approx(
            br.overhead + br.seek + br.rotation + br.transfer
        )

    def test_media_rate_decreases_inward(self, ultrastar):
        outer = ultrastar.media_rate(0)
        inner = ultrastar.media_rate(ultrastar.total_sectors - 1)
        assert outer > inner

    def test_commands_counted(self, ultrastar):
        ultrastar.service(DiskCommand.read(0, 8), 0.0)
        ultrastar.service(DiskCommand.read(8, 8), 1.0)
        assert ultrastar.commands_serviced == 2


class TestPaperFig1:
    """ATA VERIFY is served from the cache; SCSI VERIFY is not."""

    def test_sequential_scsi_verify_costs_a_rotation(self, ultrastar):
        times = run_sequential(ultrastar, DiskCommand.verify, 2, 30)
        period = ultrastar.rotation.period
        # Paper Fig. 1: SAS VERIFY response ~= rotation period (4.011 ms).
        assert np.mean(times[5:]) == pytest.approx(period, rel=0.05)

    def test_scsi_verify_insensitive_to_cache(self):
        on = Drive(hitachi_ultrastar_15k450(), cache_enabled=True)
        off = Drive(hitachi_ultrastar_15k450(), cache_enabled=False)
        t_on = run_sequential(on, DiskCommand.verify, 128, 30)
        t_off = run_sequential(off, DiskCommand.verify, 128, 30)
        assert np.mean(t_on) == pytest.approx(np.mean(t_off), rel=0.01)

    def test_ata_verify_cache_bug_speeds_up_verify(self):
        on = Drive(wd_caviar_blue(), cache_enabled=True)
        off = Drive(wd_caviar_blue(), cache_enabled=False)
        t_on = run_sequential(on, DiskCommand.verify, 128, 100)
        t_off = run_sequential(off, DiskCommand.verify, 128, 100)
        # Paper Fig. 1: ~0.5 ms vs ~8.3 ms at 64 KB; an order of magnitude.
        assert np.mean(t_on[40:]) < np.mean(t_off[40:]) / 5

    def test_ata_verify_cache_off_costs_a_rotation(self):
        drive = Drive(wd_caviar_blue(), cache_enabled=False)
        times = run_sequential(drive, DiskCommand.verify, 2, 30)
        assert np.mean(times[5:]) == pytest.approx(
            drive.rotation.period, rel=0.06
        )

    def test_ata_bug_flag_controls_behaviour(self):
        spec = wd_caviar_blue().with_overrides(ata_verify_cache_bug=False)
        fixed = Drive(spec, cache_enabled=True)
        times = run_sequential(fixed, DiskCommand.verify, 128, 50)
        assert np.mean(times[5:]) == pytest.approx(
            fixed.rotation.period, rel=0.25
        )


class TestPaperFig4:
    """SCSI VERIFY service times stay flat below ~64 KB, then grow."""

    @pytest.mark.parametrize(
        "spec_factory",
        [hitachi_ultrastar_15k450, fujitsu_max3073rc, fujitsu_map3367np],
    )
    def test_flat_below_64k_then_rising(self, spec_factory):
        rng = np.random.default_rng(1)
        means = {}
        for size_kb in (1, 16, 64, 1024, 4096):
            drive = Drive(spec_factory())
            sectors = size_kb * 2
            t, samples = 0.0, []
            for _ in range(60):
                lbn = int(rng.integers(0, drive.total_sectors - sectors))
                br = drive.service(DiskCommand.verify(lbn, sectors), t)
                samples.append(br.total)
                t = br.finish + 5e-5
            means[size_kb] = float(np.mean(samples))
        assert means[16] == pytest.approx(means[1], rel=0.15)
        assert means[64] == pytest.approx(means[1], rel=0.25)
        assert means[1024] > 1.5 * means[64]
        assert means[4096] > 2.5 * means[1024]


class TestReadCaching:
    def test_sequential_reads_stream_from_cache(self):
        drive = Drive(hitachi_ultrastar_15k450(), cache_enabled=True)
        times = run_sequential(drive, DiskCommand.read, 128, 200, turnaround=1e-4)
        assert drive.cache.hits > 100
        # Streaming rate approaches the media rate, far above the
        # missed-rotation rate.
        throughput = 128 * 512 / np.mean(times[50:])
        assert throughput > 50e6

    def test_cache_disabled_reads_pay_rotation(self):
        drive = Drive(hitachi_ultrastar_15k450(), cache_enabled=False)
        times = run_sequential(drive, DiskCommand.read, 128, 50)
        throughput = 128 * 512 / np.mean(times[5:])
        assert throughput < 20e6

    def test_repeated_read_hits_cache(self):
        drive = Drive(hitachi_ultrastar_15k450(), cache_enabled=True)
        first = drive.service(DiskCommand.read(1000, 64), 0.0)
        second = drive.service(DiskCommand.read(1000, 64), first.finish + 1e-4)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.total < first.total

    def test_write_invalidates_cache(self):
        drive = Drive(hitachi_ultrastar_15k450(), cache_enabled=True)
        t = drive.service(DiskCommand.read(1000, 64), 0.0).finish + 1e-4
        t = drive.service(DiskCommand.write(1000, 64), t).finish + 1e-4
        third = drive.service(DiskCommand.read(1000, 64), t)
        assert not third.cache_hit

    def test_scsi_verify_does_not_pollute_cache(self):
        drive = Drive(hitachi_ultrastar_15k450(), cache_enabled=True)
        t = drive.service(DiskCommand.verify(1000, 64), 0.0).finish + 1e-4
        after = drive.service(DiskCommand.read(1000, 64), t)
        assert not after.cache_hit

    def test_set_cache_enabled_drops_contents(self):
        drive = Drive(hitachi_ultrastar_15k450(), cache_enabled=True)
        drive.service(DiskCommand.read(0, 64), 0.0)
        drive.set_cache_enabled(False)
        assert len(drive.cache) == 0


class TestMultiTrackTransfers:
    def test_large_transfer_crosses_tracks(self, ultrastar):
        spt = ultrastar.geometry.sectors_per_track_at(0)
        br = ultrastar.service(DiskCommand.verify(0, spt * 3), 0.0)
        # Three track sweeps plus two switches: at least 3 revolutions.
        assert br.transfer >= 2.9 * ultrastar.rotation.period

    def test_skew_hides_head_switch(self, ultrastar):
        """With proper skew, crossing a track costs far less than a
        revolution of re-positioning."""
        spt = ultrastar.geometry.sectors_per_track_at(0)
        br = ultrastar.service(DiskCommand.verify(0, spt * 2), 0.0)
        # rotation component: initial positioning plus per-switch waits.
        assert br.rotation < 1.5 * ultrastar.rotation.period


class TestInterfaces:
    def test_presets_declare_expected_interfaces(self):
        assert hitachi_ultrastar_15k450().interface is Interface.SCSI
        assert wd_caviar_blue().interface is Interface.ATA
        assert hitachi_deskstar_7k1000().ata_verify_cache_bug

    def test_rotation_periods(self):
        assert hitachi_ultrastar_15k450().rotation_period == pytest.approx(4e-3)
        assert wd_caviar_blue().rotation_period == pytest.approx(8.333e-3, rel=1e-3)
        assert fujitsu_map3367np().rotation_period == pytest.approx(6e-3)
