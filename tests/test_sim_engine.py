"""Tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim import Event, Simulation, Timeout
from repro.sim.engine import EmptySchedule


def test_clock_starts_at_zero():
    assert Simulation().now == 0.0


def test_clock_custom_start():
    assert Simulation(start=100.0).now == 100.0


def test_run_empty_returns_immediately():
    sim = Simulation()
    sim.run()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulation()
    sim.timeout(7.5)
    sim.run()
    assert sim.now == 7.5


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_run_until_time_stops_clock():
    sim = Simulation()
    sim.timeout(10)
    sim.run(until=4)
    assert sim.now == 4.0


def test_run_until_past_raises():
    sim = Simulation(start=10)
    with pytest.raises(ValueError):
        sim.run(until=5)


def test_run_until_event_returns_value():
    sim = Simulation()

    def proc(sim):
        yield sim.timeout(2)
        return "finished"

    p = sim.process(proc(sim))
    assert sim.run(until=p) == "finished"
    assert sim.now == 2.0


def test_run_until_already_processed_event():
    sim = Simulation()
    t = sim.timeout(1, value="x")
    sim.run()
    assert sim.run(until=t) == "x"


def test_run_until_unreachable_event_raises():
    sim = Simulation()
    never = sim.event()
    with pytest.raises(RuntimeError, match="ran out of events"):
        sim.run(until=never)


def test_events_fire_in_time_order():
    sim = Simulation()
    order = []
    for delay in (5, 1, 3):
        sim.timeout(delay).callbacks.append(
            lambda ev, d=delay: order.append(d)
        )
    sim.run()
    assert order == [1, 3, 5]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulation()
    order = []
    for tag in ("a", "b", "c"):
        sim.timeout(1).callbacks.append(lambda ev, t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_step_on_empty_queue_raises():
    sim = Simulation()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulation()
    assert sim.peek() == float("inf")
    sim.timeout(3)
    sim.timeout(1)
    assert sim.peek() == 1.0


def test_event_succeed_carries_value():
    sim = Simulation()
    ev = sim.event()
    ev.succeed(123)
    sim.run()
    assert ev.ok and ev.value == 123


def test_event_double_trigger_rejected():
    sim = Simulation()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_fail_requires_exception():
    sim = Simulation()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_unhandled_failed_event_propagates():
    sim = Simulation()
    sim.event().fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_pending_event_value_access_raises():
    sim = Simulation()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_trigger_copies_state():
    sim = Simulation()
    source = sim.event().succeed("payload")
    target = sim.event()
    target.trigger(source)
    assert target.value == "payload"
    sim.run()


def test_two_simulations_are_independent():
    a, b = Simulation(), Simulation()
    a.timeout(5)
    b.timeout(2)
    a.run()
    b.run()
    assert (a.now, b.now) == (5.0, 2.0)


def test_anyof_fires_on_first():
    sim = Simulation()
    results = {}

    def proc(sim):
        slow, fast = sim.timeout(5, "slow"), sim.timeout(2, "fast")
        results["got"] = yield slow | fast

    sim.process(proc(sim))
    sim.run()
    assert list(results["got"].values()) == ["fast"]


def test_allof_waits_for_all():
    sim = Simulation()
    results = {}

    def proc(sim):
        slow, fast = sim.timeout(5, "slow"), sim.timeout(2, "fast")
        results["got"] = yield slow & fast

    sim.process(proc(sim))
    sim.run()
    assert sorted(results["got"].values()) == ["fast", "slow"]
    assert sim.now == 5.0


def test_condition_rejects_foreign_events():
    a, b = Simulation(), Simulation()
    with pytest.raises(ValueError):
        _ = Timeout(a, 1) | Timeout(b, 1)


def test_condition_with_already_processed_event():
    sim = Simulation()
    t = sim.timeout(1, "early")
    sim.run()

    def proc(sim):
        result = yield t | sim.timeout(10, "late")
        return list(result.values())

    p = sim.process(proc(sim))
    assert sim.run(until=p) == ["early"]
    assert sim.now == 1.0  # fired instantly, no extra waiting


def test_condition_failure_propagates():
    sim = Simulation()
    seen = {}

    def proc(sim):
        bad = sim.event()
        bad.fail(RuntimeError("inner"))
        try:
            yield bad & sim.timeout(5)
        except RuntimeError as exc:
            seen["exc"] = str(exc)

    sim.process(proc(sim))
    sim.run()
    assert seen["exc"] == "inner"


def test_event_repr_shows_state():
    sim = Simulation()
    ev = sim.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    sim.run()
    assert "processed" in repr(ev)
