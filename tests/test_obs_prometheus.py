"""Tests for the Prometheus textfile exporter (PR 8)."""

import math

import pytest

from repro.obs import prometheus_lines, write_textfile
from repro.telemetry.metrics import MetricsRegistry


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("sim.requests.completed").inc(42)
    registry.gauge("queue.depth").set(3.5)
    hist = registry.histogram("request.latency")
    for value in (1e-4, 1e-3, 1e-3, 2.0):
        hist.observe(value)
    return registry.snapshot()


class TestLines:
    def test_counter_and_gauge(self):
        lines = prometheus_lines(_snapshot())
        assert "# TYPE repro_sim_requests_completed counter" in lines
        assert "repro_sim_requests_completed 42" in lines
        assert "# TYPE repro_queue_depth gauge" in lines
        assert "repro_queue_depth 3.5" in lines

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        lines = prometheus_lines(_snapshot())
        buckets = [
            line for line in lines
            if line.startswith("repro_request_latency_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative never decreases
        assert counts[-1] == 4
        assert 'le="+Inf"' in buckets[-1]
        assert "repro_request_latency_count 4" in lines
        sum_line = [
            line for line in lines
            if line.startswith("repro_request_latency_sum ")
        ]
        value = float(sum_line[0].split(" ")[1])
        assert value == pytest.approx(1e-4 + 1e-3 + 1e-3 + 2.0)

    def test_name_sanitisation(self):
        lines = prometheus_lines(
            {"counters": {"drive-0.cache/hits": 1}, "gauges": {},
             "histograms": {}},
            prefix="",
        )
        assert "drive_0_cache_hits 1" in lines

    def test_nonfinite_values(self):
        lines = prometheus_lines(
            {"counters": {}, "histograms": {},
             "gauges": {"a": math.inf, "b": math.nan}},
        )
        assert "repro_a +Inf" in lines
        rendered = [line for line in lines if line.startswith("repro_b ")]
        assert rendered == ["repro_b NaN"]

    def test_float_roundtrip_lossless(self):
        value = 0.1 + 0.2  # not exactly 0.3
        lines = prometheus_lines(
            {"counters": {"x": value}, "gauges": {}, "histograms": {}},
        )
        text = [line for line in lines if line.startswith("repro_x ")][0]
        assert float(text.split(" ")[1]) == value


class TestTextfile:
    def test_write_and_content(self, tmp_path):
        path = tmp_path / "repro.prom"
        written = write_textfile(str(path), _snapshot())
        text = path.read_text()
        assert text.endswith("\n")
        assert len(text.splitlines()) == written
        assert "repro_sim_requests_completed 42" in text

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "repro.prom"
        write_textfile(str(path), _snapshot())
        write_textfile(str(path), _snapshot())
        # No temp litter left behind next to the textfile.
        assert [p.name for p in tmp_path.iterdir()] == ["repro.prom"]
