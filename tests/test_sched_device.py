"""Tests for BlockDevice and RequestLog (repro.sched.device) plus the
noop/deadline schedulers."""

import pytest

from repro.disk import DiskCommand, Drive, hitachi_ultrastar_15k450
from repro.sched import (
    BlockDevice,
    CFQScheduler,
    DeadlineScheduler,
    IORequest,
    NoopScheduler,
    PriorityClass,
)
from repro.sim import Simulation


def make_device(scheduler=None, cache=False):
    sim = Simulation()
    drive = Drive(hitachi_ultrastar_15k450(), cache_enabled=cache)
    if scheduler is None:  # note: an *empty* scheduler is falsy (__len__)
        scheduler = NoopScheduler()
    device = BlockDevice(sim, drive, scheduler)
    return sim, device


def test_single_request_completes():
    sim, device = make_device()
    request = IORequest(DiskCommand.read(0, 8))
    done = device.submit(request)
    sim.run(until=done)
    assert request.complete_time == sim.now
    assert request.response_time > 0
    assert request.breakdown is not None
    assert len(device.log) == 1


def test_double_submit_rejected():
    sim, device = make_device()
    request = IORequest(DiskCommand.read(0, 8))
    device.submit(request)
    with pytest.raises(ValueError):
        device.submit(request)


def test_requests_serviced_one_at_a_time():
    sim, device = make_device()
    first = IORequest(DiskCommand.read(0, 8))
    second = IORequest(DiskCommand.read(1_000_000, 8))
    device.submit(first)
    done = device.submit(second)
    sim.run(until=done)
    assert first.complete_time <= second.dispatch_time


def test_noop_is_fifo():
    sim, device = make_device(NoopScheduler())
    requests = [
        IORequest(DiskCommand.read(lbn, 8)) for lbn in (500_000, 100, 900_000)
    ]
    last = None
    for request in requests:
        last = device.submit(request)
    sim.run(until=last)
    dispatch_order = sorted(requests, key=lambda r: r.dispatch_time)
    assert dispatch_order == requests


def test_deadline_sorts_by_lbn():
    sim, device = make_device(DeadlineScheduler())
    far = IORequest(DiskCommand.read(900_000, 8))
    near = IORequest(DiskCommand.read(100, 8))
    device.submit(far)
    done = device.submit(near)
    # Both are queued before the dispatcher runs (submission at t=0, the
    # dispatcher's init event is already queued but selection happens on
    # the first step) — the elevator should pick the near one first.
    sim.run(until=done)
    assert near.dispatch_time <= far.dispatch_time


def test_deadline_expiry_jumps_queue():
    scheduler = DeadlineScheduler(read_expire=0.5)
    old = IORequest(DiskCommand.read(900_000, 8))
    old.stamp_submit(0.0)
    scheduler.add(old, 0.0)
    fresh = IORequest(DiskCommand.read(100, 8))
    fresh.stamp_submit(0.6)
    scheduler.add(fresh, 0.6)
    chosen, _ = scheduler.select(0.7)
    assert chosen is old


def test_log_separates_sources():
    sim, device = make_device()
    fg = IORequest(DiskCommand.read(0, 8), source="foreground")
    scrub = IORequest(
        DiskCommand.verify(8, 8), priority=PriorityClass.IDLE, source="scrubber"
    )
    device.submit(fg)
    done = device.submit(scrub)
    sim.run(until=done)
    assert device.log.count("foreground") == 1
    assert device.log.count("scrubber") == 1
    assert device.log.count() == 2
    assert device.log.bytes_completed("foreground") == 8 * 512


def test_log_arrays():
    sim, device = make_device()
    done = None
    for lbn in range(0, 80, 8):
        done = device.submit(IORequest(DiskCommand.read(lbn, 8)))
    sim.run(until=done)
    times = device.log.response_times()
    waits = device.log.wait_times()
    assert len(times) == 10
    assert (times >= waits).all()
    assert device.log.throughput(sim.now) == pytest.approx(
        10 * 8 * 512 / sim.now
    )


def test_throughput_requires_positive_duration():
    _, device = make_device()
    with pytest.raises(ValueError):
        device.log.throughput(0.0)


def test_utilisation_between_zero_and_one():
    sim, device = make_device()
    done = None
    for lbn in range(0, 80, 8):
        done = device.submit(IORequest(DiskCommand.read(lbn, 8)))
    sim.run(until=done)
    util = device.utilisation(sim.now)
    assert 0.0 < util <= 1.0


def test_cfq_idle_request_waits_for_gate_in_stack():
    sim, device = make_device(CFQScheduler(idle_gate=0.010))
    fg = IORequest(DiskCommand.read(0, 8))
    fg_done = device.submit(fg)
    sim.run(until=fg_done)
    fg_complete = sim.now
    scrub = IORequest(
        DiskCommand.verify(1000, 8),
        priority=PriorityClass.IDLE,
        source="scrubber",
    )
    scrub_done = device.submit(scrub)
    sim.run(until=scrub_done)
    assert scrub.dispatch_time >= fg_complete + 0.010


def test_dispatcher_wakes_on_late_submission():
    sim, device = make_device()
    sim.run(until=1.0)  # idle simulation time first
    request = IORequest(DiskCommand.read(0, 8))
    done = device.submit(request)
    sim.run(until=done)
    assert request.dispatch_time >= 1.0
    assert request.complete_time is not None
