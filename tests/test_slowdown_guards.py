"""Regression tests for ``ReplayResult.mean_slowdown_vs`` guard rails.

A positional slowdown comparison is only meaningful between runs of
the same trace over the same horizon with comparable completion
counts; each guard has a documented message users grep for, so the
exact wording is part of the contract.
"""

import numpy as np
import pytest

from repro.analysis.replay_cdf import _SLOWDOWN_TAIL_TOLERANCE, ReplayResult


def _result(horizon=10.0, n=100, base=0.004, digest="a" * 64):
    return ReplayResult(
        horizon=horizon,
        fg_response_times=np.full(n, base),
        fg_requests=n,
        scrub_bytes=0,
        scrub_requests=0,
        trace_digest=digest,
    )


class TestGuardRails:
    def test_cross_trace_rejected(self):
        scrub = _result(digest="a" * 64)
        baseline = _result(digest="b" * 64)
        with pytest.raises(
            ValueError, match="cannot compare slowdown across different traces"
        ) as exc:
            scrub.mean_slowdown_vs(baseline)
        # The message names both digests (truncated) for debugging.
        assert "aaaaaaaaaaaa" in str(exc.value)
        assert "bbbbbbbbbbbb" in str(exc.value)

    def test_cross_horizon_rejected(self):
        scrub = _result(horizon=10.0)
        baseline = _result(horizon=20.0)
        with pytest.raises(
            ValueError,
            match="cannot compare slowdown across different horizons",
        ) as exc:
            scrub.mean_slowdown_vs(baseline)
        assert "10.0" in str(exc.value) and "20.0" in str(exc.value)

    def test_tail_divergence_rejected(self):
        scrub = _result(n=100)
        baseline = _result(n=50)  # 2x divergence >> 25% tolerance
        with pytest.raises(
            ValueError, match="completed-request counts diverge too far"
        ) as exc:
            scrub.mean_slowdown_vs(baseline)
        assert "100 vs 50" in str(exc.value)

    def test_no_common_requests_rejected(self):
        scrub = _result(n=0)
        baseline = _result(n=0)
        with pytest.raises(ValueError, match="no common completed requests"):
            scrub.mean_slowdown_vs(baseline)


class TestAllowedComparisons:
    def test_same_run_is_zero(self):
        result = _result()
        assert result.mean_slowdown_vs(result) == 0.0

    def test_tail_within_tolerance_allowed(self):
        # A scrubber delaying a tail of completions past the horizon is
        # the legitimate case the tolerance exists for.
        n = 100
        delayed = int(n * (1 - _SLOWDOWN_TAIL_TOLERANCE) + 1)
        scrub = _result(n=delayed, base=0.006)
        baseline = _result(n=n, base=0.004)
        assert scrub.mean_slowdown_vs(baseline) == pytest.approx(0.002)

    def test_legacy_results_without_digest_compare(self):
        # Results pickled before the digest field existed must still
        # compare (the digest guard is best-effort, not a lockout).
        scrub = _result(digest=None)
        baseline = _result(digest="b" * 64)
        assert scrub.mean_slowdown_vs(baseline) == 0.0
