"""Tests for zoned disk geometry (repro.disk.geometry)."""

import pytest

from repro.disk import DiskGeometry, Zone


@pytest.fixture
def simple():
    """2 heads; zone0: 2 cyls x 10 spt, zone1: 3 cyls x 6 spt."""
    return DiskGeometry(heads=2, zones=[Zone(2, 10), Zone(3, 6)], track_skew=0.0)


def test_total_sectors(simple):
    assert simple.total_sectors == 2 * 2 * 10 + 3 * 2 * 6


def test_capacity_bytes(simple):
    assert simple.capacity_bytes == simple.total_sectors * 512


def test_cylinder_and_track_counts(simple):
    assert simple.cylinders == 5
    assert simple.tracks == 10


def test_locate_first_sector(simple):
    loc = simple.locate(0)
    assert (loc.cylinder, loc.head, loc.sector) == (0, 0, 0)
    assert loc.sectors_per_track == 10
    assert loc.track_index == 0


def test_locate_head_advances_within_cylinder(simple):
    loc = simple.locate(10)  # first sector of second surface
    assert (loc.cylinder, loc.head, loc.sector) == (0, 1, 0)
    assert loc.track_index == 1


def test_locate_cylinder_advances(simple):
    loc = simple.locate(20)
    assert (loc.cylinder, loc.head, loc.sector) == (1, 0, 0)


def test_locate_second_zone(simple):
    # Zone 0 holds 40 sectors; LBN 40 starts zone 1 (6 spt).
    loc = simple.locate(40)
    assert (loc.cylinder, loc.head, loc.sector) == (2, 0, 0)
    assert loc.sectors_per_track == 6
    assert loc.track_index == 4


def test_locate_last_sector(simple):
    loc = simple.locate(simple.total_sectors - 1)
    assert loc.cylinder == 4
    assert loc.head == 1
    assert loc.sector == 5


def test_locate_out_of_range(simple):
    with pytest.raises(ValueError):
        simple.locate(simple.total_sectors)
    with pytest.raises(ValueError):
        simple.locate(-1)


def test_zone_of_cylinder(simple):
    assert simple.zone_of_cylinder(0) == 0
    assert simple.zone_of_cylinder(1) == 0
    assert simple.zone_of_cylinder(2) == 1
    with pytest.raises(ValueError):
        simple.zone_of_cylinder(5)


def test_angle_without_skew(simple):
    loc = simple.locate(5)
    assert simple.angle_of(loc) == pytest.approx(0.5)


def test_angle_with_skew():
    geo = DiskGeometry(heads=2, zones=[Zone(2, 10)], track_skew=0.25)
    loc = geo.locate(10)  # track 1, sector 0
    assert geo.angle_of(loc) == pytest.approx(0.25)
    loc2 = geo.locate(35)  # track 3 (cyl 1, head 1), sector 5
    assert geo.angle_of(loc2) == pytest.approx((0.5 + 3 * 0.25) % 1.0)


def test_sectors_per_track_at(simple):
    assert simple.sectors_per_track_at(0) == 10
    assert simple.sectors_per_track_at(40) == 6


def test_uniform_constructor():
    geo = DiskGeometry.uniform(heads=4, cylinders=100, sectors_per_track=50)
    assert geo.total_sectors == 4 * 100 * 50
    assert len(geo.zones) == 1


def test_zoned_constructor_interpolates():
    geo = DiskGeometry.zoned(
        heads=2, cylinders=100, outer_spt=100, inner_spt=50, num_zones=6
    )
    spts = [z.sectors_per_track for z in geo.zones]
    assert spts[0] == 100
    assert spts[-1] == 50
    assert spts == sorted(spts, reverse=True)
    assert sum(z.cylinders for z in geo.zones) == 100


def test_zoned_single_zone():
    geo = DiskGeometry.zoned(
        heads=2, cylinders=10, outer_spt=100, inner_spt=50, num_zones=1
    )
    assert geo.zones[0].sectors_per_track == 100


def test_lbn_mapping_is_bijective_over_sample():
    geo = DiskGeometry(heads=3, zones=[Zone(4, 7), Zone(2, 5)], track_skew=0.1)
    seen = set()
    for lbn in range(geo.total_sectors):
        loc = geo.locate(lbn)
        key = (loc.cylinder, loc.head, loc.sector)
        assert key not in seen
        seen.add(key)
    assert len(seen) == geo.total_sectors


def test_invalid_parameters():
    with pytest.raises(ValueError):
        DiskGeometry(heads=0, zones=[Zone(1, 1)])
    with pytest.raises(ValueError):
        DiskGeometry(heads=1, zones=[])
    with pytest.raises(ValueError):
        DiskGeometry(heads=1, zones=[Zone(1, 1)], track_skew=1.0)
    with pytest.raises(ValueError):
        Zone(0, 10)
    with pytest.raises(ValueError):
        Zone(10, 0)
    with pytest.raises(ValueError):
        DiskGeometry.zoned(heads=1, cylinders=2, outer_spt=10, inner_spt=5,
                           num_zones=3)
