"""Job-queue durability: unit transitions, crash recovery, SIGKILL drill.

Two layers.  The unit half drives :class:`JobQueue` directly — dedup,
fair-share claiming, quotas, cancellation, and the recovery rule that
an opened queue never contains a ``running`` orphan.  The integration
half is the paper-grade drill: a real ``repro serve`` subprocess is
SIGKILLed mid-campaign, a new service opens the same data directory,
and the job must resume from its shard checkpoints and finish with
metrics bit-identical to an uninterrupted run — with no shard executed
twice.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.fleet import CampaignRunner, spec_from_dict
from repro.service import CampaignService, JobQueue, QueueError, ServiceClient

pytestmark = pytest.mark.service


def _spec(groups=48, shards=4, seed=13):
    return {
        "fleet": {
            "groups": groups,
            "disks_per_group": 4,
            "mttr_hours": 36.0,
            "spare_delay_hours": 6.0,
            "classes": [{"mttf_hours": 2.5e4, "lse_burst_rate_per_hour": 3e-4}],
        },
        "policies": [{"name": "weekly", "latent_window_hours": 84.0}],
        "mission_years": 6.0,
        "seed": seed,
        "shards": shards,
    }


# -- unit: transitions, dedup, fairness --------------------------------------


def test_submit_validates_and_dedups(tmp_path):
    queue = JobQueue(tmp_path)
    job, created = queue.submit(_spec(), client="a")
    assert created and job.state == "queued" and job.seq == 0
    again, created2 = queue.submit(_spec(), client="b")
    assert not created2 and again.id == job.id
    assert again.client == "a"  # first submitter owns the job
    with pytest.raises(QueueError):
        queue.submit({"fleet": {}}, client="a")
    with pytest.raises(QueueError):
        queue.submit("not a dict", client="a")


def test_claim_finish_release_cycle(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(_spec(), client="a")
    claimed = queue.claim_next()
    assert claimed.id == job.id and claimed.state == "running"
    assert claimed.attempts == 1 and claimed.started_seq == 0
    assert queue.claim_next() is None
    released = queue.release(job.id)
    assert released.state == "queued" and released.attempts == 1
    reclaimed = queue.claim_next()
    assert reclaimed.attempts == 2
    done = queue.finish(job.id, "done", result={"ok": 1})
    assert done.finished_seq == 0
    with pytest.raises(QueueError):
        queue.finish(job.id, "done")
    with pytest.raises(QueueError):
        queue.finish(job.id, "queued")
    with pytest.raises(KeyError):
        queue.get("missing")


def test_failed_and_cancelled_resubmit_requeues(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(_spec(), client="a")
    queue.claim_next()
    queue.finish(job.id, "failed", error="boom")
    back, created = queue.submit(_spec(), client="a")
    assert not created and back.state == "queued" and back.error is None
    queue.claim_next()
    queue.request_cancel(job.id)
    queue.finish(job.id, "cancelled", error="stopped")
    back2, _ = queue.submit(_spec(), client="a")
    assert back2.state == "queued" and not back2.cancel_requested


def test_cancel_semantics(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(_spec(seed=1), client="a")
    cancelled = queue.request_cancel(job.id)
    assert cancelled.state == "cancelled"  # queued cancels immediately
    running, _ = queue.submit(_spec(seed=2), client="a")
    queue.claim_next()
    flagged = queue.request_cancel(running.id)
    assert flagged.state == "running" and flagged.cancel_requested


def test_fair_share_and_quota(tmp_path):
    queue = JobQueue(tmp_path)
    a1, _ = queue.submit(_spec(seed=1), client="alice")
    a2, _ = queue.submit(_spec(seed=2), client="alice")
    b1, _ = queue.submit(_spec(seed=3), client="bob")
    first = queue.claim_next()
    assert first.id == a1.id  # all clients idle: submission order
    second = queue.claim_next()
    assert second.id == b1.id  # alice is running; bob wins fair-share
    # quota=1: both clients at quota, nothing claimable
    assert queue.claim_next(client_quota=1) is None
    third = queue.claim_next()
    assert third.id == a2.id


def test_persistence_across_reopen(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(_spec(), client="a")
    queue.claim_next()
    reopened = JobQueue(tmp_path)
    healed = reopened.get(job.id)
    assert healed.state == "queued"  # running orphan re-queued
    assert healed.attempts == 1
    assert reopened.recovered == (job.id,)
    assert reopened.counts()["running"] == 0


def test_reopen_cancel_requested_running_becomes_cancelled(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(_spec(), client="a")
    queue.claim_next()
    queue.request_cancel(job.id)
    reopened = JobQueue(tmp_path)
    assert reopened.get(job.id).state == "cancelled"


def test_seq_counters_survive_reopen(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(_spec(seed=1), client="a")
    queue.claim_next()
    queue.finish(job.id, "done")
    reopened = JobQueue(tmp_path)
    job2, _ = reopened.submit(_spec(seed=2), client="a")
    assert job2.seq == job.seq + 1
    claimed = reopened.claim_next()
    assert claimed.started_seq == 1
    assert reopened.finish(job2.id, "done").finished_seq == 1


def test_corrupt_record_is_rejected(tmp_path):
    queue = JobQueue(tmp_path)
    job, _ = queue.submit(_spec(), client="a")
    with open(queue._path(job.id), "w") as handle:
        handle.write("{not json")
    with pytest.raises(QueueError):
        JobQueue(tmp_path)


# -- integration: SIGKILL the service mid-campaign ---------------------------


def _start_serve(data_dir, extra=()):
    """Launch ``repro serve`` on an ephemeral port; returns (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         "--data-dir", str(data_dir), "--port", "0",
         "--status-interval", "0", *extra],
        env=env, cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 30
    url = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on " in line:
            url = line.split("listening on ", 1)[1].split()[0]
            break
        if proc.poll() is not None:
            raise AssertionError(f"serve died: {proc.stdout.read()}")
    assert url, "serve never reported its port"
    return proc, url


def test_sigkill_service_resumes_bit_identical(tmp_path):
    """Kill -9 mid-campaign; restart; resume; metrics bit-identical."""
    data_dir = tmp_path / "data"
    spec = _spec(groups=12_000, shards=16, seed=21)
    proc, url = _start_serve(data_dir)
    try:
        client = ServiceClient(url, client="drill")
        status, payload = client.submit(spec)
        assert status == 201
        job_id = payload["job"]["id"]
        checkpoints = data_dir / "campaigns" / job_id / "journal" / "checkpoints"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if checkpoints.is_dir() and len(os.listdir(checkpoints)) >= 2:
                break
            time.sleep(0.02)
        else:
            raise AssertionError("no checkpoints appeared before the kill")
    finally:
        proc.kill()
        proc.wait()

    # The dead service left the job 'running' on disk; a restarted
    # service must heal it to 'queued' and run it to completion from
    # the journal, never re-executing a checkpointed shard.
    record = json.loads(
        (data_dir / "jobs" / f"{job_id}.json").read_text()
    )
    assert record["state"] == "running"
    with CampaignService(data_dir, port=0, status_interval=0.0) as svc:
        assert svc.queue.recovered == (job_id,)
        final = ServiceClient(svc.url).wait(job_id, timeout=120)
    assert final["state"] == "done"
    assert final["attempts"] == 2  # one claim per service generation
    assert final["result"]["shards_resumed"] >= 2

    direct = CampaignRunner(spec_from_dict(spec)).run().metrics_dict()
    assert final["result"]["metrics"] == json.loads(json.dumps(direct))

    # No duplicated shard work: each shard either resumed from its
    # checkpoint or completed exactly once across both generations.
    # (The checkpoint is written before the monitor event, so the kill
    # can race at most one shard's shard_completed append — that shard
    # then shows up as resumed only.)
    completed, resumed = [], []
    events_path = data_dir / "campaigns" / job_id / "obs" / "events.jsonl"
    with open(events_path, encoding="utf-8") as handle:
        for line in handle:
            event = json.loads(line)
            if event["event"] == "shard_completed":
                completed.append(event["shard"])
            elif event["event"] == "shard_resumed":
                resumed.append(event["shard"])
    assert len(completed) == len(set(completed))  # no shard executed twice
    assert len(set(resumed) - set(completed)) <= 1  # kill-raced event append
    assert set(completed) | set(resumed) == set(range(16))


def test_drain_requeues_running_job(tmp_path):
    """service.stop() mid-campaign releases the job back to queued."""
    spec = _spec(groups=12_000, shards=16, seed=22)
    data_dir = tmp_path / "data"
    service = CampaignService(data_dir, port=0, status_interval=0.0)
    service.start()
    try:
        client = ServiceClient(service.url, client="drain")
        _, payload = client.submit(spec)
        job_id = payload["job"]["id"]
        checkpoints = data_dir / "campaigns" / job_id / "journal" / "checkpoints"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if checkpoints.is_dir() and len(os.listdir(checkpoints)) >= 1:
                break
            time.sleep(0.02)
    finally:
        service.stop()
    job = service.queue.get(job_id)
    assert job.state == "queued"  # released, not failed/cancelled
    assert not job.cancel_requested
    # Second service finishes it; resumed shards prove no redo.
    with CampaignService(data_dir, port=0, status_interval=0.0) as svc2:
        final = ServiceClient(svc2.url).wait(job_id, timeout=120)
    assert final["state"] == "done"
    assert final["result"]["shards_resumed"] >= 1
    direct = CampaignRunner(spec_from_dict(spec)).run().metrics_dict()
    assert final["result"]["metrics"] == json.loads(json.dumps(direct))
