"""Tests for the seeded config fuzzer (repro.verify.fuzzer)."""

import pytest

from repro.verify import fuzz, generate_configs, minimise
from repro.verify.fuzzer import DEFAULTS, repro_snippet
from repro.verify.scenario import FAMILIES


class TestGenerateConfigs:
    def test_deterministic(self):
        assert generate_configs(5, 10) == generate_configs(5, 10)

    def test_seed_matters(self):
        assert generate_configs(5, 10) != generate_configs(6, 10)

    def test_prefix_stable(self):
        # Trimming a fuzz run never reshuffles it: config i of (seed, n)
        # equals config i of (seed, m).
        long = generate_configs(7, 20)
        short = generate_configs(7, 5)
        assert long[:5] == short

    def test_fields_are_scenario_parameters(self):
        for config in generate_configs(0, 20):
            assert set(config) <= set(DEFAULTS)
            assert config["family"] in FAMILIES
            assert 2 <= config["regions"] <= 16
            assert 0.15 <= config["horizon"] <= 0.4

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            generate_configs(0, -1)


class TestMinimise:
    def test_shrinks_towards_defaults(self):
        # A synthetic failure predicate that only needs two parameters:
        # minimisation must reset everything else to the baseline.
        failing = dict(
            DEFAULTS,
            family="fault-injected",
            algorithm="staggered",
            regions=13,
            request_kb=128,
            cylinders=37,
            seed=4111,
        )

        def still_fails(params):
            return (
                params["family"] == "fault-injected"
                and params["seed"] == 4111
            )

        minimal = minimise(failing, axes=(), still_fails=still_fails)
        assert minimal["family"] == "fault-injected"
        assert minimal["seed"] == 4111
        assert minimal["algorithm"] == DEFAULTS["algorithm"]
        assert minimal["regions"] == DEFAULTS["regions"]
        assert minimal["cylinders"] == DEFAULTS["cylinders"]

    def test_snippet_prints_only_interesting_keys(self):
        params = dict(DEFAULTS, family="fault-injected", seed=4111)
        snippet = repro_snippet(params, axes=("kernel-twin", "feed"))
        assert "from repro.verify import run_axes" in snippet
        assert "fault-injected" in snippet
        assert "4111" in snippet
        assert "'drive'" not in snippet  # still at its default
        # The snippet is executable Python.
        compile(snippet, "<snippet>", "exec")


class TestFuzz:
    def test_small_fleet_passes(self):
        seen = []
        report = fuzz(
            seed=7,
            n=4,
            axes=("kernel-twin",),
            progress=lambda i, n: seen.append((i, n)),
        )
        assert report.ok
        assert report.passed == 4
        assert report.failures == []
        assert seen == [(0, 4), (1, 4), (2, 4), (3, 4)]
        assert "OK" in report.summary()
        assert "4/4" in report.summary()

    def test_invariants_only_mode(self):
        report = fuzz(seed=7, n=3, axes=())
        assert report.ok
        assert report.passed == 3

    def test_signatures_collected(self):
        report = fuzz(seed=7, n=2, axes=("kernel-twin", "telemetry"))
        assert set(report.signatures) == {0, 1}
        for per_axis in report.signatures.values():
            assert set(per_axis) == {"kernel-twin", "telemetry"}

    def test_failure_collected_not_raised(self):
        # Plant the cursor-drift bug for the whole fleet: every config
        # exercising the feed axis on a dense trace must fail, and fuzz
        # must report rather than raise.
        from repro.verify.selftest import MUTATIONS

        with MUTATIONS["cursor-drift"].patch():
            report = fuzz(seed=0, n=2, axes=("feed",))
        assert not report.ok
        assert report.passed + len(report.failures) == 2
        failure = report.failures[0]
        assert "DifferentialMismatch" in failure.describe()
        assert "run_axes" in failure.snippet
