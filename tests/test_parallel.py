"""Tests for the parallel sweep runner and result cache.

The central property: a sweep's results are a pure function of
``(task function, parameters, base seed)`` — never of worker count,
scheduling order, or cache state.  Serial, parallel, and warm-cache
executions must therefore be bit-identical.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.service_model import ScrubServiceModel
from repro.core.optimizer import ScrubParameterOptimizer
from repro.parallel import ResultCache, SweepRunner, canonicalize, derive_seed


def _noisy_dot(values, scale, seed):
    """A task whose result exposes any seed or ordering divergence."""
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(len(values))
    return float(np.dot(np.asarray(values), noise) * scale)


def _square(x):
    return x * x


# -- determinism: serial vs parallel ----------------------------------------


class TestSerialParallelIdentical:
    @settings(max_examples=5, deadline=None)
    @given(
        param_sets=st.lists(
            st.fixed_dictionaries(
                {
                    "values": st.lists(
                        st.floats(-1e6, 1e6, allow_nan=False),
                        min_size=1,
                        max_size=8,
                    ),
                    "scale": st.floats(-100, 100, allow_nan=False),
                }
            ),
            min_size=2,
            max_size=6,
        ),
        base_seed=st.integers(0, 2**32 - 1),
    )
    def test_parallel_results_bit_identical_to_serial(
        self, param_sets, base_seed
    ):
        serial = SweepRunner(workers=0, base_seed=base_seed).map(
            _noisy_dot, param_sets, seed_param="seed"
        )
        parallel = SweepRunner(workers=2, base_seed=base_seed).map(
            _noisy_dot, param_sets, seed_param="seed"
        )
        assert serial == parallel  # exact float equality, not approx

    def test_results_keep_input_order(self):
        params = [{"x": i} for i in range(7)]
        assert SweepRunner(workers=2).map(_square, params) == [
            i * i for i in range(7)
        ]

    def test_unpicklable_task_falls_back_to_serial(self):
        double = lambda x: 2 * x  # noqa: E731 — deliberately unpicklable
        runner = SweepRunner(workers=2)
        assert runner.map(double, [{"x": 1}, {"x": 2}]) == [2, 4]
        assert runner.executed == 2

    def test_explicit_seed_wins_over_derived(self):
        params = [{"values": [1.0, 2.0], "scale": 1.0, "seed": 7}]
        (explicit,) = SweepRunner(workers=0, base_seed=99).map(
            _noisy_dot, params, seed_param="seed"
        )
        assert explicit == _noisy_dot([1.0, 2.0], 1.0, 7)


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        seeds = [derive_seed(42, i) for i in range(100)]
        assert seeds == [derive_seed(42, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert all(0 <= s < 2**63 for s in seeds)

    def test_base_seed_changes_every_stream(self):
        assert all(
            derive_seed(1, i) != derive_seed(2, i) for i in range(20)
        )


# -- the cache ---------------------------------------------------------------


class TestResultCache:
    def test_hit_skips_execution(self, tmp_path):
        params = [{"x": i} for i in range(5)]
        cold = SweepRunner(workers=0, cache=ResultCache(tmp_path))
        first = cold.map(_square, params)
        assert cold.executed == 5

        warm = SweepRunner(workers=0, cache=ResultCache(tmp_path))
        second = warm.map(_square, params)
        assert second == first
        assert warm.executed == 0
        assert warm.cache_hits == 5

    def test_key_sensitive_to_params_function_and_version(self, tmp_path):
        cache = ResultCache(tmp_path, version="1")
        base = cache.key(_square, {"x": 1})
        assert cache.key(_square, {"x": 2}) != base
        assert cache.key(_noisy_dot, {"x": 1}) != base
        assert ResultCache(tmp_path, version="2").key(_square, {"x": 1}) != base

    def test_key_ignores_dict_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key(_square, {"a": 1, "b": 2.0}) == cache.key(
            _square, {"b": 2.0, "a": 1}
        )

    @pytest.mark.parametrize(
        "garbage",
        [
            b"not a pickle",
            # 'g' is the pickle GET opcode, whose int argument parse
            # raises ValueError rather than UnpicklingError — any load
            # failure must still be a miss.
            b"garbage\n",
            b"",
        ],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = ResultCache(tmp_path)
        key = cache.key(_square, {"x": 3})
        cache.put(key, 9)
        path = cache._path(key)
        path.write_bytes(garbage)
        hit, _ = cache.get(key)
        assert not hit
        # A subsequent run recomputes and repairs the entry.
        runner = SweepRunner(workers=0, cache=cache)
        assert runner.map(_square, [{"x": 3}]) == [9]
        hit, value = cache.get(key)
        assert hit and value == 9

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=0, cache=cache)
        runner.map(_square, [{"x": 1}, {"x": 2}])
        assert cache.clear() == 2
        rerun = SweepRunner(workers=0, cache=ResultCache(tmp_path))
        rerun.map(_square, [{"x": 1}])
        assert rerun.executed == 1


class TestCanonicalize:
    def test_arrays_hash_by_content(self):
        a = np.arange(4, dtype=float)
        assert canonicalize(a) == canonicalize(a.copy())
        assert canonicalize(a) != canonicalize(a + 1)
        assert canonicalize(a) != canonicalize(a.astype(np.int64))

    def test_objects_canonicalize_by_type_and_attributes(self):
        m1 = ScrubServiceModel([65536, 4 << 20], [0.004, 0.05])
        m2 = ScrubServiceModel([65536, 4 << 20], [0.004, 0.05])
        m3 = ScrubServiceModel([65536, 4 << 20], [0.004, 0.06])
        assert canonicalize(m1) == canonicalize(m2)
        assert canonicalize(m1) != canonicalize(m3)

    def test_float_int_distinction(self):
        assert canonicalize({"x": 1}) != canonicalize({"x": 1.0})


# -- the acceptance scenario: warm optimizer sweep, zero simulations ---------


@pytest.fixture
def optimizer():
    rng = np.random.default_rng(7)
    durations = rng.exponential(0.05, 2000)
    model = ScrubServiceModel([65536, 4 << 20], [0.004, 0.05])
    return ScrubParameterOptimizer(
        durations,
        total_requests=4000,
        span=100.0,
        service_model=model,
        sizes=[k * 65536 for k in range(1, 13)],
    )


class TestOptimizerSweepCaching:
    def test_warm_rerun_performs_zero_simulation_calls(
        self, tmp_path, optimizer, monkeypatch
    ):
        goals = [0.001, 0.002]
        cold_runner = SweepRunner(workers=0, cache=ResultCache(tmp_path))
        cold = [optimizer.optimize(g, runner=cold_runner) for g in goals]
        assert cold_runner.executed > 0

        import repro.core.optimizer as optimizer_module

        calls = {"n": 0}
        real = optimizer_module.simulate_fixed_waiting

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(
            optimizer_module, "simulate_fixed_waiting", counting
        )
        warm_runner = SweepRunner(workers=0, cache=ResultCache(tmp_path))
        warm = [optimizer.optimize(g, runner=warm_runner) for g in goals]

        assert warm == cold
        assert warm_runner.executed == 0
        assert calls["n"] == 0  # zero simulation calls on the warm rerun

    def test_runner_path_matches_serial_optimize(self, tmp_path, optimizer):
        runner = SweepRunner(workers=0, cache=ResultCache(tmp_path))
        assert optimizer.optimize(0.001, runner=runner) == optimizer.optimize(
            0.001
        )


# -- worker-crash resilience -------------------------------------------------

def _flaky(sentinel, value, crash=False):
    """Dies hard (kills its worker) once, then succeeds on retry."""
    import os

    if crash and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)
    return value * 2


def _fatal(value, crash=False):
    """Reproducibly kills its worker when asked to."""
    import os

    if crash:
        os._exit(1)
    return value


def _angry(value):
    raise ValueError(f"no thanks: {value}")


class TestWorkerCrashResilience:
    def test_transient_crash_is_retried_on_fresh_worker(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        params = [
            {"sentinel": sentinel, "value": i, "crash": i == 1}
            for i in range(4)
        ]
        results = SweepRunner(workers=2).map(_flaky, params)
        assert results == [0, 2, 4, 6]

    def test_reproducible_crash_raises_structured_error(self, tmp_path):
        from repro.parallel import SweepTaskError

        params = [
            {"value": 0},
            {"value": 1, "crash": True},
            {"value": 2},
        ]
        with pytest.raises(SweepTaskError) as excinfo:
            SweepRunner(workers=2).map(_fatal, params)
        assert excinfo.value.failures == [(1, {"value": 1, "crash": True})]
        # The message names the failing task and its parameter set.
        assert "task 1" in str(excinfo.value)
        assert "'crash': True" in str(excinfo.value)

    def test_ordinary_exceptions_propagate_unwrapped(self):
        params = [{"value": 0}, {"value": 1}]
        with pytest.raises(ValueError, match="no thanks"):
            SweepRunner(workers=2).map(_angry, params)

    def test_serial_path_is_unaffected(self):
        results = SweepRunner(workers=0).map(
            _fatal, [{"value": 3}, {"value": 4}]
        )
        assert results == [3, 4]


class TestCacheEviction:
    """PR 7: corrupt entries are *deleted and counted*, not just missed."""

    def test_digest_mismatch_is_evicted_from_disk(self, tmp_path):
        from repro.telemetry import Recorder

        recorder = Recorder(wall_time=False)
        cache = ResultCache(tmp_path, telemetry=recorder)
        key = cache.key(_square, {"x": 5})
        cache.put(key, 25)
        path = cache._path(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload bit; the header digest catches it
        path.write_bytes(bytes(blob))
        hit, _ = cache.get(key)
        assert not hit
        assert not path.exists()  # evicted, not left to poison later runs
        assert cache.evictions == 1
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["cache.evictions"] == 1
        assert counters["cache.evictions.digest"] == 1

    def test_unpicklable_entry_is_evicted_and_counted(self, tmp_path):
        from repro.telemetry import Recorder

        recorder = Recorder(wall_time=False)
        cache = ResultCache(tmp_path, telemetry=recorder)
        key = cache.key(_square, {"x": 8})
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle at all")
        hit, _ = cache.get(key)
        assert not hit and not path.exists()
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["cache.evictions.unpicklable"] == 1

    def test_legacy_bare_pickle_entries_still_hit(self, tmp_path):
        import pickle

        cache = ResultCache(tmp_path)
        key = cache.key(_square, {"x": 6})
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps(36))  # pre-PR 7 entry format
        hit, value = cache.get(key)
        assert hit and value == 36
        assert cache.evictions == 0

    def test_new_entries_are_self_verifying(self, tmp_path):
        from repro.parallel.cache import _ENTRY_MAGIC

        cache = ResultCache(tmp_path)
        key = cache.key(_square, {"x": 2})
        cache.put(key, 4)
        assert cache._path(key).read_bytes().startswith(_ENTRY_MAGIC)


def _die_n_times(sentinel, value, times):
    """Kills its worker until ``times`` prior attempts are on record."""
    import os

    count = 0
    if os.path.exists(sentinel):
        with open(sentinel) as fh:
            count = len(fh.readlines())
    if count < times:
        with open(sentinel, "a") as fh:
            fh.write("x\n")
        os._exit(1)
    return value * 3


class TestConfigurableRetry:
    """PR 7: the broken-pool retry loop is policy-driven."""

    def test_extra_attempts_rescue_a_twice_crashing_task(self, tmp_path):
        from repro.parallel import RetryPolicy

        sentinel = str(tmp_path / "double-crash")
        policy = RetryPolicy(
            max_attempts=4, backoff_base=0.0, backoff_max=0.0, jitter=0.0
        )
        runner = SweepRunner(workers=2, retry=policy)
        params = [
            {"sentinel": sentinel, "value": 7, "times": 2},
            {"sentinel": str(tmp_path / "unused"), "value": 1, "times": 0},
        ]
        assert runner.map(_die_n_times, params) == [21, 3]
        # The crasher burns exactly two retries; its pool-mate may add
        # one more if the broken pool took it down before it finished.
        assert 2 <= runner.retries <= 3

    def test_default_policy_gives_up_after_one_retry(self, tmp_path):
        from repro.parallel import SweepTaskError

        sentinel = str(tmp_path / "stubborn")
        params = [
            {"sentinel": sentinel, "value": 7, "times": 5},
            {"sentinel": str(tmp_path / "unused"), "value": 1, "times": 0},
        ]
        with pytest.raises(SweepTaskError):
            SweepRunner(workers=2).map(_die_n_times, params)

    def test_attempts_and_retries_land_in_telemetry(self, tmp_path):
        from repro.parallel import RetryPolicy
        from repro.telemetry import Recorder

        recorder = Recorder(wall_time=False)
        sentinel = str(tmp_path / "counted-crash")
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.0, backoff_max=0.0, jitter=0.0
        )
        runner = SweepRunner(workers=2, retry=policy, telemetry=recorder)
        params = [
            {"sentinel": sentinel, "value": 2, "times": 1},
            {"sentinel": str(tmp_path / "unused"), "value": 5, "times": 0},
        ]
        assert runner.map(_die_n_times, params) == [6, 15]
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["parallel.retries"] == runner.retries
        assert counters["parallel.attempts"] == 2 + runner.retries
        assert runner.retries >= 1


class TestCachePoisoning:
    """A poisoned on-disk entry must degrade to recomputation.

    Torn writes can't happen (put() is atomic), but a cache directory
    shared over NFS, hit by a disk-full mid-copy, or corrupted by an
    unrelated process can still hand the runner garbage; the sweep's
    results must not change.
    """

    def test_truncated_entry_is_discarded_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key(_square, {"x": 7})
        cache.put(key, 49)
        path = cache._path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # partial copy
        runner = SweepRunner(workers=0, cache=cache)
        assert runner.map(_square, [{"x": 7}]) == [49]
        assert runner.executed == 1  # recomputed, not served from cache
        assert cache.misses >= 1
        hit, value = cache.get(key)  # and the entry was repaired
        assert hit and value == 49

    def test_poisoned_scenario_outcome_recomputes_identically(self, tmp_path):
        from repro.verify import outcome_signature, run_scenario

        params = {"horizon": 0.2, "seed": 3, "telemetry": "recorder"}
        cache = ResultCache(tmp_path)
        clean = SweepRunner(workers=1, cache=cache).map(run_scenario, [params])
        cache._path(cache.key(run_scenario, params)).write_bytes(
            b"\x80\x04poison"
        )
        recomputed = SweepRunner(
            workers=1, cache=ResultCache(tmp_path)
        ).map(run_scenario, [params])
        assert outcome_signature(recomputed[0]) == outcome_signature(clean[0])


class TestCacheSizeBudget:
    """max_bytes turns the cache into an LRU bounded by disk footprint."""

    def _fill(self, cache, count, payload=2048):
        keys = []
        for i in range(count):
            key = cache.key(_square, {"x": i, "pad": "p" * 8})
            cache.put(key, b"\x00" * payload)
            keys.append(key)
        return keys

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 8)
        assert cache.lru_evictions == 0
        assert sum(1 for _ in tmp_path.glob("*/*.pkl")) == 8

    def test_put_evicts_oldest_first(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path, max_bytes=6 * 2200)
        keys = self._fill(cache, 4)
        # Make access order unambiguous regardless of filesystem
        # timestamp granularity.
        for age, key in enumerate(keys):
            os.utime(cache._path(key), (age, age))
        self._fill(cache, 4, payload=4096)  # push well past the budget
        assert cache.lru_evictions > 0
        # The oldest entry went first; the newest write always survives.
        hit0, _ = cache.get(keys[0])
        assert not hit0

    def test_read_refreshes_lru_position(self, tmp_path):
        import os

        cache = ResultCache(tmp_path, max_bytes=1 << 20)
        keys = self._fill(cache, 3)
        for age, key in enumerate(keys):
            os.utime(cache._path(key), (age, age))
        hit, _ = cache.get(keys[0])  # refresh the oldest entry's atime
        assert hit
        stats = [cache._path(k).stat().st_atime for k in keys]
        assert stats[0] > stats[1]  # no longer the eviction candidate

    def test_just_written_entry_never_evicted(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=64)  # smaller than one entry
        key = cache.key(_square, {"x": 1})
        cache.put(key, b"\x00" * 4096)
        hit, value = cache.get(key)
        assert hit and value == b"\x00" * 4096

    def test_budget_counts_in_telemetry(self, tmp_path):
        from repro.telemetry import Recorder

        recorder = Recorder(wall_time=False)
        cache = ResultCache(tmp_path, max_bytes=4096, telemetry=recorder)
        self._fill(cache, 6)
        assert cache.lru_evictions > 0
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["cache.lru_evictions"] == cache.lru_evictions

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=0)
