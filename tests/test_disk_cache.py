"""Tests for the segmented streaming disk cache (repro.disk.cache)."""

import pytest

from repro.disk import DiskCache


def make_cache(**kwargs):
    defaults = dict(num_segments=4, segment_sectors=1000, read_ahead_sectors=100)
    defaults.update(kwargs)
    return DiskCache(**defaults)


def test_empty_cache_misses():
    cache = make_cache()
    assert cache.lookup(0, 10, now=0.0) is None
    assert cache.misses == 1
    assert cache.hits == 0


def test_inserted_range_hits():
    cache = make_cache()
    cache.insert(100, 50, now=1.0, fill_rate=1000.0)
    assert cache.lookup(100, 50, now=2.0) == pytest.approx(1.0)
    assert cache.hits == 1


def test_partial_overlap_misses():
    cache = make_cache(read_ahead_sectors=0)
    cache.insert(100, 50, now=1.0, fill_rate=1000.0)
    assert cache.lookup(90, 20, now=2.0) is None
    assert cache.lookup(140, 20, now=2.0) is None


def test_subrange_hits():
    cache = make_cache()
    cache.insert(100, 50, now=1.0, fill_rate=1000.0)
    assert cache.lookup(110, 10, now=2.0) == pytest.approx(1.0)


def test_read_ahead_region_available_later():
    cache = make_cache(read_ahead_sectors=100)
    cache.insert(0, 50, now=10.0, fill_rate=10.0)  # 10 sectors/s fill
    # Sectors [50, 150) stream in at 10 sectors/s after t=10.
    ready = cache.lookup(50, 20, now=10.0)
    assert ready == pytest.approx(10.0 + 20 / 10.0)


def test_zero_fill_rate_makes_read_ahead_unavailable():
    cache = make_cache()
    cache.insert(0, 10, now=0.0, fill_rate=0.0)
    assert cache.lookup(5, 10, now=1.0) == float("inf")


def test_lru_eviction():
    cache = make_cache(num_segments=2, read_ahead_sectors=0)
    cache.insert(0, 10, now=0.0, fill_rate=1.0)
    cache.insert(1000, 10, now=1.0, fill_rate=1.0)
    cache.insert(2000, 10, now=2.0, fill_rate=1.0)  # evicts [0, 10)
    assert cache.lookup(0, 10, now=3.0) is None
    assert cache.lookup(1000, 10, now=3.0) is not None
    assert cache.lookup(2000, 10, now=3.0) is not None


def test_hit_refreshes_lru_order():
    cache = make_cache(num_segments=2, read_ahead_sectors=0)
    cache.insert(0, 10, now=0.0, fill_rate=1.0)
    cache.insert(1000, 10, now=1.0, fill_rate=1.0)
    cache.lookup(0, 10, now=2.0)  # refresh the older segment
    cache.insert(2000, 10, now=3.0, fill_rate=1.0)  # should evict [1000, 1010)
    assert cache.lookup(0, 10, now=4.0) is not None
    assert cache.lookup(1000, 10, now=4.0) is None


def test_sequential_insert_extends_segment():
    cache = make_cache(read_ahead_sectors=50)
    cache.insert(0, 100, now=0.0, fill_rate=100.0)
    cache.insert(100, 100, now=1.0, fill_rate=100.0)
    assert len(cache) == 1
    segment = cache.segments[0]
    assert segment.start == 0
    assert segment.end == 250  # 200 data + 50 read-ahead


def test_streaming_lookup_slides_window():
    """Continuous read-ahead: hits near the fill front extend the segment."""
    cache = make_cache(read_ahead_sectors=100, segment_sectors=10_000)
    cache.insert(0, 100, now=0.0, fill_rate=1000.0)
    end_before = cache.segments[0].end
    assert cache.lookup(150, 40, now=1.0) is not None
    assert cache.segments[0].end > end_before


def test_segment_capacity_trim():
    cache = make_cache(segment_sectors=100, read_ahead_sectors=0)
    cache.insert(0, 80, now=0.0, fill_rate=1.0)
    cache.insert(80, 80, now=1.0, fill_rate=1.0)
    segment = cache.segments[0]
    assert segment.end - segment.start == 100
    assert segment.end == 160
    # Head of the stream was discarded.
    assert cache.lookup(0, 10, now=2.0) is None


def test_invalidate_drops_overlapping():
    cache = make_cache(read_ahead_sectors=0)
    cache.insert(0, 100, now=0.0, fill_rate=1.0)
    cache.insert(500, 100, now=0.0, fill_rate=1.0)
    cache.invalidate(50, 10)
    assert cache.lookup(0, 10, now=1.0) is None
    assert cache.lookup(500, 100, now=1.0) is not None


def test_invalidate_ignores_adjacent():
    cache = make_cache(read_ahead_sectors=0)
    cache.insert(0, 100, now=0.0, fill_rate=1.0)
    cache.invalidate(100, 50)  # touches only the boundary
    assert cache.lookup(0, 100, now=1.0) is not None


def test_clear():
    cache = make_cache()
    cache.insert(0, 10, now=0.0, fill_rate=1.0)
    cache.clear()
    assert len(cache) == 0
    assert cache.lookup(0, 10, now=1.0) is None


def test_invalid_parameters():
    with pytest.raises(ValueError):
        DiskCache(num_segments=0)
    with pytest.raises(ValueError):
        DiskCache(segment_sectors=0)
    with pytest.raises(ValueError):
        DiskCache(read_ahead_sectors=-1)
