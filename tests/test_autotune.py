"""Tests for online parameter re-tuning (repro.core.autotune)."""

import numpy as np
import pytest

from repro.analysis.service_model import ScrubServiceModel
from repro.core import SequentialScrub
from repro.core.autotune import AutoTuner
from repro.core.policies import WaitingScrubber
from repro.disk import DiskCommand, Drive, hitachi_ultrastar_15k450
from repro.sched import BlockDevice, IORequest, NoopScheduler
from repro.sim import RandomStreams, Simulation

#: Cheap two-point service model: avoids drive measurement in unit tests.
SERVICE = ScrubServiceModel([65536, 4 * 1024 * 1024], [0.005, 0.045])


def make_stack():
    sim = Simulation()
    device = BlockDevice(
        sim,
        Drive(hitachi_ultrastar_15k450(), cache_enabled=False),
        NoopScheduler(),
    )
    scrubber = WaitingScrubber(
        sim, device, SequentialScrub(), threshold=0.5, request_bytes=65536
    )
    return sim, device, scrubber


def foreground(sim, device, rng, think_mean, count):
    for _ in range(count):
        done = device.submit(IORequest(DiskCommand.read(0, 8)))
        yield done
        yield sim.timeout(rng.exponential(think_mean))


class TestAutoTuner:
    def test_no_retune_without_data(self):
        sim, device, scrubber = make_stack()
        scrubber.start()
        tuner = AutoTuner(
            sim, scrubber, SERVICE, slowdown_goal=0.001,
            retune_interval=1.0, min_samples=50,
        )
        tuner.start()
        sim.run(until=3.0)
        assert tuner.retunes == 0
        assert scrubber.threshold == 0.5  # untouched

    def test_retunes_with_traffic(self):
        sim, device, scrubber = make_stack()
        scrubber.start()
        rng = RandomStreams(seed=5).get("fg")
        sim.process(foreground(sim, device, rng, think_mean=0.05, count=2000))
        tuner = AutoTuner(
            sim, scrubber, SERVICE, slowdown_goal=0.001,
            retune_interval=5.0, min_samples=50,
        )
        tuner.start()
        sim.run(until=30.0)
        assert tuner.retunes >= 1
        applied = tuner.history[-1]
        assert scrubber.threshold == applied.threshold
        assert scrubber.request_sectors == applied.request_bytes // 512
        assert applied.achieved_slowdown <= 0.001 * 1.01

    def test_parameters_track_workload_shift(self):
        """Busy phase -> light phase: the tuned threshold should drop
        (long idle gaps make waiting cheap) or the size should grow."""
        sim, device, scrubber = make_stack()
        scrubber.start()
        rng = RandomStreams(seed=9).get("fg")

        def two_phase(sim, device):
            # Busy: short think times.
            yield from foreground(sim, device, rng, think_mean=0.01, count=1500)
            # Light: long think times.
            yield from foreground(sim, device, rng, think_mean=0.5, count=200)

        sim.process(two_phase(sim, device))
        tuner = AutoTuner(
            sim, scrubber, SERVICE, slowdown_goal=0.0005,
            retune_interval=10.0, window=20.0, min_samples=30,
        )
        tuner.start()
        sim.run(until=120.0)
        assert tuner.retunes >= 2
        first, last = tuner.history[0], tuner.history[-1]
        assert (first.threshold, first.request_bytes) != (
            last.threshold, last.request_bytes
        )

    def test_manual_retune(self):
        sim, device, scrubber = make_stack()
        scrubber.start()
        rng = RandomStreams(seed=2).get("fg")
        sim.process(foreground(sim, device, rng, think_mean=0.05, count=500))
        tuner = AutoTuner(
            sim, scrubber, SERVICE, slowdown_goal=0.002,
            retune_interval=1e9, min_samples=20,
        )
        tuner.start()
        sim.run(until=15.0)
        result = tuner.retune()
        assert result is not None
        assert tuner.retunes == 1

    def test_stop_detaches(self):
        sim, device, scrubber = make_stack()
        scrubber.start()
        tuner = AutoTuner(sim, scrubber, SERVICE, slowdown_goal=0.001)
        tuner.start()
        tuner.stop()
        assert tuner._observe not in device.observers

    def test_validation(self):
        sim, device, scrubber = make_stack()
        with pytest.raises(ValueError):
            AutoTuner(sim, scrubber, SERVICE, slowdown_goal=0)
        with pytest.raises(ValueError):
            AutoTuner(sim, scrubber, SERVICE, 0.001, retune_interval=0)
        with pytest.raises(ValueError):
            AutoTuner(sim, scrubber, SERVICE, 0.001, min_samples=1)

    def test_double_start_rejected(self):
        sim, device, scrubber = make_stack()
        tuner = AutoTuner(sim, scrubber, SERVICE, slowdown_goal=0.001)
        tuner.start()
        with pytest.raises(RuntimeError):
            tuner.start()
