"""Out-of-core trace store: round-trip fidelity, integrity checking,
corpus indexing, and zero-copy replay (repro.traces.store).

The central properties:

* a store round-trips bit-identically — columns, digest, and replay
  outcomes all match the in-memory trace it was written from;
* the on-disk layout is a pure function of trace *content* (writer
  chunking never shows through);
* truncated or corrupt data is refused, never silently served.
"""

import pickle

import numpy as np
import pytest

from repro.traces import (
    StoredTrace,
    StoredTraceRef,
    StoreIntegrityError,
    Trace,
    TraceCorpus,
    TraceStoreError,
    generate_corpus,
    generate_trace,
    idle_intervals_streaming,
    write_trace,
)
from repro.traces.idle import idle_intervals_from_trace


def small_trace(n=1000, seed=7, name="small"):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(0.01, n))
    return Trace(
        times=times,
        lbns=rng.integers(0, 1 << 20, n),
        sectors=rng.choice([8, 16, 64], n),
        is_write=rng.random(n) < 0.3,
        name=name,
        capacity_sectors=1 << 24,
    )


# -- round trip --------------------------------------------------------------


class TestRoundTrip:
    def test_columns_bit_identical(self, tmp_path):
        trace = small_trace()
        stored = write_trace(trace, tmp_path / "s", chunk_requests=256)
        assert len(stored) == len(trace)
        assert stored.chunk_count == 4  # 1000 requests / 256
        back = stored.as_trace()
        for attr in ("times", "lbns", "sectors", "is_write"):
            np.testing.assert_array_equal(
                getattr(back, attr), getattr(trace, attr)
            )
        assert back.capacity_sectors == trace.capacity_sectors
        assert stored.name == trace.name

    def test_digest_matches_in_memory_trace(self, tmp_path):
        trace = small_trace()
        stored = write_trace(trace, tmp_path / "s", chunk_requests=300)
        assert stored.digest() == trace.digest()
        # and the materialised copy agrees without re-hashing
        assert stored.as_trace().digest() == trace.digest()

    def test_duration_and_time_range_from_header(self, tmp_path):
        trace = small_trace()
        stored = write_trace(trace, tmp_path / "s", chunk_requests=256)
        assert stored.duration == pytest.approx(trace.duration)
        lo, hi = stored.time_range
        assert lo == float(trace.times[0]) and hi == float(trace.times[-1])

    def test_layout_independent_of_writer_chunking(self, tmp_path):
        """Per-chunk digests depend on content, not how chunks arrived."""
        trace = small_trace()
        parts = [
            Trace(
                trace.times[a:b], trace.lbns[a:b],
                trace.sectors[a:b], trace.is_write[a:b],
                name=trace.name, capacity_sectors=trace.capacity_sectors,
                validate=False,
            )
            for a, b in [(0, 37), (37, 500), (500, 501), (501, 1000)]
        ]
        mono = write_trace(trace, tmp_path / "mono", chunk_requests=128)
        streamed = write_trace(iter(parts), tmp_path / "str", chunk_requests=128)
        assert streamed.digest() == mono.digest()
        assert [c["sha256"] for c in streamed._chunks] == [
            c["sha256"] for c in mono._chunks
        ]

    def test_iteration_yields_time_ordered_chunks(self, tmp_path):
        trace = small_trace()
        stored = write_trace(trace, tmp_path / "s", chunk_requests=256)
        chunks = list(stored)
        assert [len(c) for c in chunks] == [256, 256, 256, 232]
        np.testing.assert_array_equal(
            np.concatenate([c.times for c in chunks]), trace.times
        )

    def test_records_match_legacy_feed(self, tmp_path):
        trace = small_trace(n=64)
        stored = write_trace(trace, tmp_path / "s", chunk_requests=16)
        assert list(stored.records()) == list(trace.records())

    def test_unsorted_source_refused(self, tmp_path):
        trace = small_trace(n=32)
        backwards = Trace(
            trace.times[::-1].copy(), trace.lbns, trace.sectors,
            trace.is_write, validate=False,
        )
        with pytest.raises(TraceStoreError, match="non-decreasing"):
            write_trace(backwards, tmp_path / "s", chunk_requests=16)

    def test_cross_chunk_sort_violation_refused(self, tmp_path):
        a = small_trace(n=32)
        b = Trace(
            a.times - 100.0, a.lbns, a.sectors, a.is_write, validate=False
        )
        with pytest.raises(TraceStoreError, match="time-sorted"):
            write_trace(iter([a, b]), tmp_path / "s", chunk_requests=16)


# -- integrity ---------------------------------------------------------------


class TestIntegrity:
    def test_truncated_chunk_refused_at_open(self, tmp_path):
        stored = write_trace(small_trace(), tmp_path / "s", chunk_requests=256)
        victim = stored.path / "chunk-000001.bin"
        victim.write_bytes(victim.read_bytes()[:-8])
        with pytest.raises(StoreIntegrityError, match="expected"):
            StoredTrace.open(stored.path)

    def test_missing_chunk_refused_at_open(self, tmp_path):
        stored = write_trace(small_trace(), tmp_path / "s", chunk_requests=256)
        (stored.path / "chunk-000002.bin").unlink()
        with pytest.raises(StoreIntegrityError, match="missing chunk"):
            StoredTrace.open(stored.path)

    def test_flipped_byte_refused_at_first_read(self, tmp_path):
        stored = write_trace(small_trace(), tmp_path / "s", chunk_requests=256)
        victim = stored.path / "chunk-000001.bin"
        blob = bytearray(victim.read_bytes())
        blob[100] ^= 0xFF  # same size, different content
        victim.write_bytes(bytes(blob))
        reopened = StoredTrace.open(stored.path)  # size check passes
        reopened.chunk(0)  # intact chunk still serves
        with pytest.raises(StoreIntegrityError, match="refusing corrupt"):
            reopened.chunk(1)

    def test_verify_audits_every_chunk(self, tmp_path):
        stored = write_trace(small_trace(), tmp_path / "s", chunk_requests=256)
        stored.verify()  # intact store passes
        victim = stored.path / "chunk-000003.bin"
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0x01
        victim.write_bytes(bytes(blob))
        with pytest.raises(StoreIntegrityError):
            StoredTrace.open(stored.path).verify()

    def test_headerless_directory_refused(self, tmp_path):
        with pytest.raises(TraceStoreError, match="no header"):
            StoredTrace.open(tmp_path)

    def test_existing_store_not_overwritten(self, tmp_path):
        write_trace(small_trace(n=16), tmp_path / "s", chunk_requests=8)
        with pytest.raises(TraceStoreError, match="already exists"):
            write_trace(small_trace(n=16), tmp_path / "s", chunk_requests=8)


# -- refs --------------------------------------------------------------------


class TestStoredTraceRef:
    def test_pickle_round_trip_and_open(self, tmp_path):
        stored = write_trace(
            small_trace(), tmp_path / "s", chunk_requests=256
        )
        ref = pickle.loads(pickle.dumps(stored.ref()))
        assert ref.digest == stored.digest()
        assert ref.length == len(stored)
        reopened = ref.open()
        assert reopened.digest() == stored.digest()

    def test_open_refuses_digest_mismatch(self, tmp_path):
        stored = write_trace(
            small_trace(), tmp_path / "s", chunk_requests=256
        )
        bad = StoredTraceRef(
            path=str(stored.path), digest="0" * 64,
            length=len(stored), name=stored.name,
        )
        with pytest.raises(StoreIntegrityError, match="ref expects"):
            bad.open()


# -- streaming idle extraction ----------------------------------------------


class TestIdleStreaming:
    def test_single_chunk_bit_identical_to_monolithic(self):
        trace = generate_trace("MSRusr2", duration=600, seed=1)
        starts, durations = idle_intervals_from_trace(trace)
        s2, d2 = idle_intervals_streaming(iter([trace]))
        np.testing.assert_array_equal(s2, starts)
        np.testing.assert_array_equal(d2, durations)

    def test_multi_chunk_matches_monolithic(self, tmp_path):
        trace = generate_trace("MSRusr2", duration=600, seed=1)
        stored = write_trace(trace, tmp_path / "s", chunk_requests=500)
        assert stored.chunk_count > 3
        starts, durations = idle_intervals_from_trace(trace)
        s2, d2 = idle_intervals_streaming(stored.iter_chunks())
        assert len(d2) == len(durations)
        np.testing.assert_allclose(s2, starts, rtol=0, atol=1e-9)
        np.testing.assert_allclose(d2, durations, rtol=0, atol=1e-9)

    def test_deterministic_for_fixed_chunking(self, tmp_path):
        trace = generate_trace("MSRusr2", duration=600, seed=1)
        stored = write_trace(trace, tmp_path / "s", chunk_requests=500)
        a = idle_intervals_streaming(stored.iter_chunks())
        b = idle_intervals_streaming(stored.iter_chunks())
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


# -- replay ------------------------------------------------------------------


class TestStoredReplay:
    def test_replay_bit_identical_to_in_memory(self, tmp_path):
        from repro.analysis.replay_cdf import replay_with_scrubber
        from repro.disk.models import PRESETS

        trace = generate_trace("MSRusr2", duration=300, seed=2)
        stored = write_trace(trace, tmp_path / "s", chunk_requests=400)
        assert stored.chunk_count > 1
        spec = PRESETS["ultrastar"]()
        waiting = {"threshold": 0.05, "request_bytes": 256 * 1024}
        mem = replay_with_scrubber(trace, spec, waiting=waiting)
        disk = replay_with_scrubber(stored, spec, waiting=waiting)
        np.testing.assert_array_equal(
            disk.fg_response_times, mem.fg_response_times
        )
        assert disk.scrub_bytes == mem.scrub_bytes
        assert disk.trace_digest == mem.trace_digest

    def test_cache_key_parity_with_in_memory_trace(self, tmp_path):
        from repro.parallel.cache import canonicalize

        trace = small_trace()
        stored = write_trace(trace, tmp_path / "s", chunk_requests=256)
        assert canonicalize(stored) == canonicalize(trace)
        assert canonicalize(stored.ref()) == canonicalize(trace)


# -- corpus ------------------------------------------------------------------


class TestCorpus:
    def test_create_add_open(self, tmp_path):
        corpus = TraceCorpus.create(tmp_path / "c")
        corpus.add("alpha", small_trace(name="alpha"), chunk_requests=256)
        corpus.add("beta", small_trace(seed=9, name="beta"), chunk_requests=256)
        reopened = TraceCorpus.open(tmp_path / "c")
        assert reopened.names() == ["alpha", "beta"]
        assert "alpha" in reopened and "nope" not in reopened
        row = reopened.describe("alpha")
        assert row["requests"] == 1000 and row["chunks"] == 4
        entry = reopened.entry("alpha")
        assert entry.digest() == row["digest"]

    def test_duplicate_and_invalid_names_refused(self, tmp_path):
        corpus = TraceCorpus.create(tmp_path / "c")
        corpus.add("alpha", small_trace(), chunk_requests=256)
        with pytest.raises(TraceStoreError, match="already exists"):
            corpus.add("alpha", small_trace(), chunk_requests=256)
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(TraceStoreError, match="invalid"):
                corpus.add(bad, small_trace(), chunk_requests=256)

    def test_unknown_entry_raises_keyerror(self, tmp_path):
        corpus = TraceCorpus.create(tmp_path / "c")
        with pytest.raises(KeyError, match="unknown corpus entry"):
            corpus.describe("ghost")

    def test_generate_corpus_is_seed_deterministic(self, tmp_path):
        a = generate_corpus(
            tmp_path / "a", names=["MSRusr2"], duration=300, seed=5,
            chunk_requests=512,
        )
        b = generate_corpus(
            tmp_path / "b", names=["MSRusr2"], duration=300, seed=5,
            chunk_requests=512,
        )
        assert a.describe("MSRusr2")["digest"] == b.describe("MSRusr2")["digest"]

    def test_generate_corpus_repetitions_tile_time(self, tmp_path):
        corpus = generate_corpus(
            tmp_path / "c", names=["MSRusr2"], duration=300, seed=5,
            repetitions=3, chunk_requests=512,
        )
        single = generate_trace("MSRusr2", duration=300, seed=5)
        stored = corpus.entry("MSRusr2")
        assert len(stored) == 3 * len(single)
        assert stored.duration > 2.9 * single.duration
        times = stored.as_trace().times
        assert np.all(np.diff(times) >= 0)
