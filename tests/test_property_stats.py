"""Property-based tests: hazard estimators, idle summary, trace digest.

Runs under hypothesis when available (the container bakes it in); when
it is not, each property falls back to a seeded-random sweep over the
same input space, so the suite loses example diversity but never
coverage.
"""

import functools

import numpy as np
import pytest

from repro.stats.hazard import (
    expected_remaining,
    fraction_intervals_longer,
    percentile_remaining,
    usable_fraction,
)
from repro.stats.idle import summarize_idle
from repro.traces.io import read_csv_trace, write_csv_trace
from repro.traces.record import Trace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the container ships hypothesis
    HAVE_HYPOTHESIS = False

_FALLBACK_EXAMPLES = 60


def _fallback_durations(rng):
    n = int(rng.integers(1, 120))
    scale = float(rng.choice([1e-3, 0.1, 1.0, 100.0]))
    # Mix of exponential (memoryless) and Pareto-ish (heavy) shapes.
    if rng.integers(2):
        return rng.exponential(scale, n) + 1e-9
    return scale * (1.0 + rng.pareto(1.5, n))


def durations_property(test):
    """Drive ``test(durations=...)`` with hypothesis or seeded random."""
    if HAVE_HYPOTHESIS:
        strategy = st.lists(
            st.floats(1e-6, 1e4, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=120,
        ).map(lambda xs: np.asarray(xs, dtype=float))
        return settings(max_examples=100, deadline=None)(
            given(durations=strategy)(test)
        )

    @functools.wraps(test)
    def fallback():
        rng = np.random.default_rng(20120625)  # DSN 2012
        for _ in range(_FALLBACK_EXAMPLES):
            test(durations=_fallback_durations(rng))

    return fallback


@durations_property
def test_expected_remaining_properties(durations):
    taus = np.array([0.0, durations.min() / 2, float(np.median(durations))])
    out = expected_remaining(durations, taus)
    # At tau=0 every interval survives: the answer is the plain mean.
    assert out[0] == pytest.approx(durations.mean())
    # Conditional on survival, the remaining time is strictly positive.
    alive = ~np.isnan(out)
    assert np.all(out[alive] > 0)
    # Beyond the largest observation nothing survives: NaN, not garbage.
    beyond = expected_remaining(durations, np.array([durations.max() * 2]))
    assert np.isnan(beyond[0])


@durations_property
def test_percentile_remaining_bounds(durations):
    taus = np.array([0.0, float(np.median(durations)) / 2])
    out = percentile_remaining(durations, taus, q=1.0)
    alive = ~np.isnan(out)
    assert np.all(out[alive] >= 0)
    # The 1st percentile of D - tau can never exceed max(D) - tau.
    assert np.all(out[alive] <= durations.max() - taus[alive] + 1e-9)
    # And never exceeds the conditional mean's own upper bound either.
    assert np.all(out[alive] <= durations.max() + 1e-9)


@durations_property
def test_usable_fraction_monotone_in_tau(durations):
    taus = np.linspace(0, durations.max(), 8)
    out = usable_fraction(durations, taus)
    # Waiting zero forfeits nothing; waiting longer only loses.
    assert out[0] == pytest.approx(1.0)
    assert np.all(out <= 1.0 + 1e-9)
    assert np.all(out >= -1e-9)
    assert np.all(np.diff(out) <= 1e-9)


@durations_property
def test_fraction_intervals_longer_is_survival_curve(durations):
    taus = np.linspace(0, durations.max() * 1.1, 8)
    out = fraction_intervals_longer(durations, taus)
    assert np.all((0 <= out) & (out <= 1))
    assert np.all(np.diff(out) <= 1e-12)  # non-increasing
    assert out[-1] == 0.0  # nothing outlives a tau beyond the max


@durations_property
def test_summarize_idle_matches_numpy(durations):
    stats = summarize_idle(durations, span=float(durations.sum()) * 2)
    assert stats.count == len(durations)
    assert stats.mean == pytest.approx(durations.mean())
    assert stats.variance == pytest.approx(durations.var())
    assert stats.cov == pytest.approx(
        np.sqrt(durations.var()) / durations.mean()
    )
    assert stats.total_idle == pytest.approx(durations.sum())
    assert 0 <= stats.idle_fraction <= 1


def test_summarize_idle_input_validation():
    with pytest.raises(ValueError, match="empty"):
        summarize_idle(np.array([]))
    with pytest.raises(ValueError, match="positive"):
        summarize_idle(np.array([1.0, 0.0]))
    with pytest.raises(ValueError, match="span"):
        summarize_idle(np.array([1.0]), span=-1.0)


def test_hazard_input_validation():
    with pytest.raises(ValueError, match="empty"):
        expected_remaining(np.array([]), np.array([0.0]))
    with pytest.raises(ValueError, match="non-negative"):
        usable_fraction(np.array([-1.0, 2.0]), np.array([0.0]))
    with pytest.raises(ValueError, match="percentile"):
        percentile_remaining(np.array([1.0]), np.array([0.0]), q=0.0)


# -- Trace digest canonicalisation -------------------------------------------


def _random_trace(rng, n=None):
    """A valid random trace with microsecond-quantised times.

    The canonical CSV dialect formats times with ``%.6f``, so only
    microsecond-aligned traces survive a round trip bit-exactly — which
    is exactly the class the digest-invariance property quantifies over.
    """
    n = n if n is not None else int(rng.integers(1, 200))
    times = np.sort(rng.integers(0, 10_000_000, n)) / 1e6
    lbns = rng.integers(0, 1 << 30, n)
    sectors = rng.integers(1, 256, n)
    is_write = rng.integers(0, 2, n).astype(bool)
    return Trace(
        times, lbns, sectors, is_write,
        name="prop", capacity_sectors=1 << 31,
    )


class TestTraceDigest:
    def test_digest_invariant_under_chunking(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            trace = _random_trace(rng)
            chunk = max(1, len(trace) // 7)
            pieces = [
                Trace(
                    trace.times[i:i + chunk],
                    trace.lbns[i:i + chunk],
                    trace.sectors[i:i + chunk],
                    trace.is_write[i:i + chunk],
                    name=trace.name,
                    capacity_sectors=trace.capacity_sectors,
                    validate=False,
                )
                for i in range(0, len(trace), chunk)
            ]
            rebuilt = Trace(
                np.concatenate([p.times for p in pieces]),
                np.concatenate([p.lbns for p in pieces]),
                np.concatenate([p.sectors for p in pieces]),
                np.concatenate([p.is_write for p in pieces]),
                name="renamed",  # metadata must not participate
                capacity_sectors=trace.capacity_sectors,
            )
            assert rebuilt.digest() == trace.digest()

    def test_digest_invariant_under_gzip_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        for i in range(10):
            trace = _random_trace(rng)
            path = tmp_path / f"t{i}.csv.gz"
            write_csv_trace(trace, path)
            back = read_csv_trace(path)
            assert back.digest() == trace.digest()

    def test_digest_sensitive_to_content_and_capacity(self):
        rng = np.random.default_rng(2)
        trace = _random_trace(rng, n=50)
        bumped = Trace(
            trace.times, trace.lbns + 1, trace.sectors, trace.is_write,
            capacity_sectors=trace.capacity_sectors,
        )
        assert bumped.digest() != trace.digest()
        recapped = Trace(
            trace.times, trace.lbns, trace.sectors, trace.is_write,
            capacity_sectors=(trace.capacity_sectors or 0) + 1,
        )
        assert recapped.digest() != trace.digest()
