"""End-to-end integration tests across the whole stack.

These exercise the complete pipelines a user of the library would run,
at reduced scale: trace generation → statistics → optimisation →
full-stack validation, and scrubbing → LSE repair → rebuild.
"""

import numpy as np
import pytest

from repro.analysis.replay_cdf import replay_with_scrubber
from repro.analysis.service_model import ScrubServiceModel
from repro.core import Scrubber, SequentialScrub, StaggeredScrub
from repro.core.optimizer import ScrubParameterOptimizer
from repro.core.policies import WaitingScrubber
from repro.disk import Drive, hitachi_ultrastar_15k450
from repro.raid import RaidArray, RaidGeometry, RaidLevel
from repro.sched import BlockDevice, CFQScheduler, NoopScheduler, PriorityClass
from repro.sim import RandomStreams, Simulation
from repro.traces import generate_trace
from repro.traces.catalog import trace_idle_intervals
from repro.workloads import SequentialReader, TraceReplayer


@pytest.fixture(scope="module")
def service_model():
    return ScrubServiceModel.from_spec(hitachi_ultrastar_15k450())


class TestTuneAndValidatePipeline:
    """The paper's Section V-D workflow, end to end."""

    def test_optimizer_parameters_hold_up_in_replay(self, service_model):
        trace = generate_trace("MSRusr2", duration=3600.0)
        _, durations = trace_idle_intervals("MSRusr2", trace)
        optimizer = ScrubParameterOptimizer(
            durations, len(trace), trace.duration, service_model
        )
        best = optimizer.optimize(0.0005)

        window = trace.window(0.0, 240.0)
        baseline = replay_with_scrubber(
            window, hitachi_ultrastar_15k450(), horizon=240.0
        )
        tuned = replay_with_scrubber(
            window, hitachi_ultrastar_15k450(),
            waiting={
                "threshold": best.threshold,
                "request_bytes": best.request_bytes,
            },
            horizon=240.0,
        )
        slowdown = tuned.mean_slowdown_vs(baseline)
        # Queueing amplification allows some excess over the analytic
        # goal, but the measured slowdown stays in the same regime...
        assert slowdown < 20 * 0.0005
        # ...while scrub throughput is a large fraction of the analytic
        # prediction.
        assert tuned.scrub_mbps > 0.3 * best.throughput_mbps

    def test_waiting_beats_cfq_at_matched_slowdown(self, service_model):
        trace = generate_trace("MSRusr2", duration=3600.0)
        _, durations = trace_idle_intervals("MSRusr2", trace)
        optimizer = ScrubParameterOptimizer(
            durations, len(trace), trace.duration, service_model
        )
        best = optimizer.optimize(0.0002)
        window = trace.window(0.0, 240.0)
        spec = hitachi_ultrastar_15k450()
        baseline = replay_with_scrubber(window, spec, horizon=240.0)
        from repro.analysis.impact import ScrubberSetup

        cfq = replay_with_scrubber(
            window, spec, scrubber=ScrubberSetup(priority=PriorityClass.IDLE),
            horizon=240.0,
        )
        waiting = replay_with_scrubber(
            window, spec,
            waiting={
                "threshold": best.threshold,
                "request_bytes": best.request_bytes,
            },
            horizon=240.0,
        )
        assert waiting.scrub_mbps > 2 * cfq.scrub_mbps
        assert waiting.mean_slowdown_vs(baseline) < 5 * max(
            cfq.mean_slowdown_vs(baseline), 1e-4
        )


class TestScrubProtectsRebuild:
    """Scrubbing -> repair -> failure -> rebuild, on the full stack."""

    def _tiny_drive(self):
        return Drive(
            hitachi_ultrastar_15k450().with_overrides(
                cylinders=100, outer_spt=64, inner_spt=64, num_zones=1,
                heads=2, average_seek=1e-3, full_stroke_seek=2e-3,
            ),
            cache_enabled=False,
        )

    def _make_array(self, sim):
        devices = [
            BlockDevice(sim, self._tiny_drive(), NoopScheduler())
            for _ in range(3)
        ]
        sectors = devices[0].drive.total_sectors
        sectors -= sectors % 16
        geometry = RaidGeometry(RaidLevel.RAID5, 3, 16, sectors)
        return RaidArray(sim, devices, geometry)

    def _run(self, scrub):
        sim = Simulation()
        array = self._make_array(sim)
        rng = np.random.default_rng(11)
        for _ in range(10):
            disk = int(rng.choice([0, 2]))
            array.errors.inject(
                disk, int(rng.integers(0, array.geometry.disk_sectors - 8)),
                int(rng.integers(1, 8)),
            )
        if scrub:
            for disk in (0, 2):
                scrubber = Scrubber(
                    sim, array.devices[disk], StaggeredScrub(8), max_passes=1
                )
                done = scrubber.start()
                sim.run(until=done)
        array.fail_disk(1)
        return sim.run(until=array.rebuild())

    def test_scrubbing_eliminates_rebuild_losses(self):
        assert self._run(scrub=False) > 0
        assert self._run(scrub=True) == 0


class TestForegroundPlusScrubberPlusReplayer:
    def test_three_way_coexistence(self):
        """Closed-loop reader, open-loop replayer and an Idle scrubber
        share one device without deadlock or starvation anomalies."""
        sim = Simulation()
        device = BlockDevice(
            sim,
            Drive(hitachi_ultrastar_15k450(), cache_enabled=False),
            CFQScheduler(),
        )
        streams = RandomStreams(seed=21)
        SequentialReader(sim, device, streams.get("reader")).start()
        # Flat (non-diurnal) arrivals so a 20 s window has traffic.
        trace = generate_trace("TPCdisk66", duration=20.0, rate_scale=0.01)
        TraceReplayer(
            sim, device, trace.records(), source="replayed"
        ).start()
        scrubber = Scrubber(
            sim, device, SequentialScrub(), priority=PriorityClass.IDLE
        )
        scrubber.start()
        sim.run(until=20.0)
        assert device.log.count("foreground") > 100
        assert device.log.count("replayed") > 10
        # Everything submitted eventually completed (bounded queues).
        assert device.queued < 50


class TestWaitingScrubberFullPass:
    def test_scrubs_whole_disk_through_idle_gaps(self):
        sim = Simulation()
        spec = hitachi_ultrastar_15k450().with_overrides(
            cylinders=60, outer_spt=64, inner_spt=64, num_zones=1, heads=2,
            average_seek=1e-3, full_stroke_seek=2e-3,
        )
        device = BlockDevice(
            sim, Drive(spec, cache_enabled=False), NoopScheduler()
        )
        scrubber = WaitingScrubber(
            sim, device, SequentialScrub(), threshold=0.02,
            request_bytes=32 * 1024,
        )
        scrubber.start()

        def sporadic(sim, device):
            from repro.disk import DiskCommand
            from repro.sched import IORequest

            rng = RandomStreams(seed=3).get("sporadic")
            while True:
                yield sim.timeout(rng.exponential(0.2))
                device.submit(IORequest(DiskCommand.read(0, 8)))

        sim.process(sporadic(sim, device))
        sim.run(until=30.0)
        assert scrubber.passes_completed >= 1
        assert scrubber.collisions > 0
