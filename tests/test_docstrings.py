"""Run the doctests embedded in module documentation.

The examples in docstrings are part of the public contract; this
keeps them honest.
"""

import doctest

import pytest

import repro.sim
import repro.sim.engine
import repro.sim.rng

MODULES = [repro.sim, repro.sim.engine, repro.sim.rng]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
