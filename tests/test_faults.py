"""Tests for fault injection and the error lifecycle (repro.faults).

Covers the fault plans (deterministic, seeded), live media fault state
(activation, range queries, spare-pool reallocation), the status plumbing
through drive and block layer, the ATA ``VERIFY``-from-cache silent-miss
path (paper Fig. 1), and the scrub-side split/remap/verify lifecycle.
"""

import pytest

from repro.core import Scrubber, SequentialScrub
from repro.disk import Drive, wd_caviar_blue
from repro.disk.commands import CommandStatus, DiskCommand
from repro.disk.models import DriveSpec
from repro.faults import (
    BernoulliFaultModel,
    ClusteredBurstFaultModel,
    ErrorEventKind,
    FaultPlan,
    MediaFaults,
    RemediationPolicy,
    SectorError,
    build_model,
)
from repro.sched import BlockDevice, NoopScheduler
from repro.sched.request import IORequest
from repro.sim import Simulation


def tiny_spec(**overrides) -> DriveSpec:
    """A minuscule drive (6400 sectors) so passes finish quickly."""
    spec = wd_caviar_blue().with_overrides(
        cylinders=50, outer_spt=64, inner_spt=64, num_zones=1, heads=2,
        average_seek=1e-3, full_stroke_seek=2e-3,
    )
    return spec.with_overrides(**overrides)


def plan_at(drive: Drive, *errors) -> FaultPlan:
    """A hand-built plan of ``(time, lbn)`` pairs for ``drive``."""
    return FaultPlan(
        total_sectors=drive.total_sectors,
        horizon=max((t for t, _ in errors), default=0.0) + 1.0,
        errors=tuple(SectorError(time=t, lbn=l) for t, l in errors),
    )


def make_stack(spec=None, cache_enabled=False, faults_errors=(), plan=None):
    sim = Simulation()
    drive = Drive(spec or tiny_spec(), cache_enabled=cache_enabled)
    if plan is None:
        plan = plan_at(drive, *faults_errors)
    faults = MediaFaults(plan)
    drive.install_faults(faults)
    device = BlockDevice(sim, drive, NoopScheduler())
    return sim, device, faults


def run_request(sim, device, command, source="foreground"):
    request = IORequest(command, source=source)
    completion = device.submit(request)
    sim.run(until=completion)
    return request


# -- fault plans --------------------------------------------------------------

class TestFaultPlans:
    def test_same_seed_same_plan(self):
        model = ClusteredBurstFaultModel(inter_burst_mean=1.0)
        a = model.generate(100_000, 30.0, seed=42)
        b = model.generate(100_000, 30.0, seed=42)
        assert a == b

    def test_different_seed_different_plan(self):
        model = ClusteredBurstFaultModel(inter_burst_mean=1.0)
        a = model.generate(100_000, 30.0, seed=1)
        b = model.generate(100_000, 30.0, seed=2)
        assert a != b

    def test_errors_within_bounds(self):
        for name in ("bernoulli", "bursts"):
            model = build_model(name)
            plan = model.generate(10_000, 5.0, seed=7)
            for error in plan.errors:
                assert 0 <= error.lbn < 10_000
                assert 0.0 <= error.time <= 5.0

    def test_bernoulli_rate_scales(self):
        sparse = BernoulliFaultModel(per_sector_probability=1e-4)
        dense = BernoulliFaultModel(per_sector_probability=1e-2)
        n = 100_000
        assert len(dense.generate(n, 1.0, seed=0)) > len(
            sparse.generate(n, 1.0, seed=0)
        )

    def test_plan_validates_lbns(self):
        with pytest.raises(ValueError):
            FaultPlan(
                total_sectors=10,
                horizon=1.0,
                errors=(SectorError(time=0.0, lbn=10),),
            )

    def test_one_onset_per_lbn(self):
        plan = ClusteredBurstFaultModel(inter_burst_mean=0.01).generate(
            5_000, 5.0, seed=3
        )
        lbns = [e.lbn for e in plan.errors]
        assert len(lbns) == len(set(lbns))

    def test_unknown_model_name(self):
        with pytest.raises(ValueError):
            build_model("cosmic-rays")


# -- media fault state --------------------------------------------------------

class TestMediaFaults:
    def test_errors_activate_at_onset(self):
        drive = Drive(tiny_spec(), cache_enabled=False)
        faults = MediaFaults(plan_at(drive, (2.0, 100)))
        assert faults.first_bad(0, drive.total_sectors, now=1.0) is None
        assert faults.first_bad(0, drive.total_sectors, now=2.0) == 100

    def test_range_queries(self):
        drive = Drive(tiny_spec(), cache_enabled=False)
        faults = MediaFaults(plan_at(drive, (0.0, 10), (0.0, 20), (0.0, 30)))
        assert faults.bad_in_range(0, 25, now=0.0) == [10, 20]
        assert faults.first_bad(11, 100, now=0.0) == 20
        assert faults.limit_end(0, 50, now=0.0) == 10
        assert faults.limit_end(31, 50, now=0.0) == 50

    def test_reallocate_clears_and_consumes_spare(self):
        drive = Drive(tiny_spec(), cache_enabled=False)
        faults = MediaFaults(plan_at(drive, (0.0, 10)), spare_sectors=1)
        assert faults.reallocate(10, now=0.5)
        assert faults.first_bad(10, 1, now=0.5) is None
        assert faults.remapped_count == 1
        # Pool exhausted: the next reallocation fails and is logged.
        assert not faults.reallocate(11, now=0.6)
        kinds = [r.kind for r in faults.log.records]
        assert ErrorEventKind.REALLOCATION_FAILED in kinds

    def test_remap_before_onset_suppresses_error(self):
        drive = Drive(tiny_spec(), cache_enabled=False)
        faults = MediaFaults(plan_at(drive, (5.0, 99)))
        faults.reallocate(99, now=1.0)
        assert faults.first_bad(99, 1, now=6.0) is None

    def test_install_checks_size(self):
        drive = Drive(tiny_spec(), cache_enabled=False)
        plan = FaultPlan(total_sectors=drive.total_sectors + 1, horizon=1.0,
                         errors=())
        with pytest.raises(ValueError):
            drive.install_faults(MediaFaults(plan))


# -- command status through the stack ----------------------------------------

class TestMediumErrors:
    def test_read_over_bad_sector_fails(self):
        sim, device, _ = make_stack(faults_errors=[(0.0, 50)])
        request = run_request(sim, device, DiskCommand.read(40, 20))
        assert request.failed
        assert request.status is CommandStatus.MEDIUM_ERROR
        assert request.breakdown.error_lbn == 50

    def test_read_outside_bad_extent_succeeds(self):
        sim, device, _ = make_stack(faults_errors=[(0.0, 50)])
        request = run_request(sim, device, DiskCommand.read(51, 20))
        assert not request.failed
        assert request.status is CommandStatus.GOOD

    def test_error_costs_retry_time(self):
        spec = tiny_spec()
        sim, device, _ = make_stack(spec=spec, faults_errors=[(0.0, 50)])
        bad = run_request(sim, device, DiskCommand.read(50, 1))
        sim2, device2, _ = make_stack(spec=spec)
        good = run_request(sim2, device2, DiskCommand.read(50, 1))
        assert bad.service_time - good.service_time == pytest.approx(
            spec.media_error_retry_time
        )

    def test_detection_attributed_to_source(self):
        sim, device, faults = make_stack(faults_errors=[(0.0, 50)])
        run_request(sim, device, DiskCommand.verify(0, 100), source="scrubber")
        detection = faults.log.detections[50]
        assert detection.source == "scrubber"
        assert faults.log.detected_by("scrubber") == [50]
        assert device.log.errors("scrubber")[0].command.lbn == 0

    def test_verify_on_scsi_drive_always_hits_media(self):
        spec = tiny_spec(ata_verify_cache_bug=False)
        sim, device, faults = make_stack(
            spec=spec, cache_enabled=True,
            plan=plan_at(Drive(spec), (1.0, 100)),
        )
        # Cache the region while it is still healthy...
        first = run_request(sim, device, DiskCommand.verify(96, 16))
        assert not first.failed
        # ...then fail it on the medium after the error's onset.
        sim.run(until=2.0)
        second = run_request(sim, device, DiskCommand.verify(96, 16))
        assert second.failed
        assert faults.log.detections[100].opcode == "verify"


# -- the ATA VERIFY cache bug (Fig. 1) ---------------------------------------

class TestAtaCacheBugMasksErrors:
    def stack(self, bug: bool):
        spec = tiny_spec(ata_verify_cache_bug=bug)
        return make_stack(
            spec=spec, cache_enabled=True,
            plan=plan_at(Drive(spec), (1.0, 100)),
        )

    def test_cached_verify_over_bad_sector_reports_success_on_ata(self):
        sim, device, faults = self.stack(bug=True)
        # READ caches [96, 112) while healthy; the error onsets at t=1;
        # the later VERIFY is served from the cache and silently passes.
        run_request(sim, device, DiskCommand.read(96, 16))
        sim.run(until=2.0)
        verify = run_request(sim, device, DiskCommand.verify(96, 16),
                             source="scrubber")
        assert not verify.failed  # the scrub "passed"
        masked = faults.log.by_kind(ErrorEventKind.CACHE_MASKED)
        assert [r.lbn for r in masked] == [100]
        assert faults.log.detections == {}

    def test_same_plan_on_scsi_semantics_reports_medium_error(self):
        sim, device, faults = self.stack(bug=False)
        run_request(sim, device, DiskCommand.read(96, 16))
        sim.run(until=2.0)
        verify = run_request(sim, device, DiskCommand.verify(96, 16),
                             source="scrubber")
        assert verify.failed
        assert verify.status is CommandStatus.MEDIUM_ERROR
        assert 100 in faults.log.detections
        assert faults.log.by_kind(ErrorEventKind.CACHE_MASKED) == []

    def test_read_ahead_never_caches_an_active_bad_sector(self):
        spec = tiny_spec(ata_verify_cache_bug=True)
        sim, device, _ = make_stack(
            spec=spec, cache_enabled=True,
            plan=plan_at(Drive(spec), (0.0, 100)),
        )
        # The error is active *before* this read of [80, 96): read-ahead
        # must stop at LBN 100, so a VERIFY there still hits the medium.
        run_request(sim, device, DiskCommand.read(80, 16))
        verify = run_request(sim, device, DiskCommand.verify(100, 1))
        assert verify.failed


# -- the scrub lifecycle ------------------------------------------------------

class TestScrubLifecycle:
    def test_split_remap_verify_end_to_end(self):
        sim, device, faults = make_stack(
            faults_errors=[(0.0, 70), (0.0, 71), (0.0, 500)]
        )
        scrubber = Scrubber(
            sim, device, SequentialScrub(), max_passes=1,
            remediation=RemediationPolicy(),
        )
        sim.run(until=scrubber.start())
        faults.finalize(sim.now)
        log = faults.log
        assert scrubber.errors_seen == 2  # two failing top-level extents
        assert scrubber.sectors_remapped == 3
        assert sorted(log.remapped) == [70, 71, 500]
        assert all(log.verified.get(lbn) for lbn in (70, 71, 500))
        assert log.scrub_lifecycle_complete()
        assert faults.active_count == 0
        # Detection precedes reallocation precedes verify, per sector.
        for lbn in (70, 71, 500):
            assert log.detections[lbn].time <= log.remapped[lbn]

    def test_without_remediation_errors_stay_bad(self):
        sim, device, faults = make_stack(faults_errors=[(0.0, 70)])
        scrubber = Scrubber(sim, device, SequentialScrub(), max_passes=1)
        sim.run(until=scrubber.start())
        assert scrubber.errors_seen == 1
        assert scrubber.sectors_remapped == 0
        assert faults.active_count == 1
        assert not faults.log.remapped

    def test_request_stop_finishes_remediation(self):
        sim, device, faults = make_stack(faults_errors=[(0.0, 70)])
        scrubber = Scrubber(
            sim, device, SequentialScrub(), remediation=RemediationPolicy()
        )
        process = scrubber.start()
        sim.run(until=0.01)  # mid-pass, likely mid-remediation
        scrubber.request_stop()
        sim.run(until=process)
        assert faults.log.scrub_lifecycle_complete()

    def test_backoff_slows_split(self):
        fast = RemediationPolicy(backoff=0.0)
        slow = RemediationPolicy(backoff=0.05, max_backoff=1.0)
        times = {}
        for label, policy in (("fast", fast), ("slow", slow)):
            sim, device, _ = make_stack(faults_errors=[(0.0, 70)])
            scrubber = Scrubber(
                sim, device, SequentialScrub(), max_passes=1,
                remediation=policy,
            )
            sim.run(until=scrubber.start())
            times[label] = sim.now
        assert times["slow"] > times["fast"]

    def test_spare_exhaustion_counts_failures(self):
        sim = Simulation()
        drive = Drive(tiny_spec(), cache_enabled=False)
        faults = MediaFaults(
            plan_at(drive, (0.0, 10), (0.0, 600)), spare_sectors=1
        )
        drive.install_faults(faults)
        device = BlockDevice(sim, drive, NoopScheduler())
        scrubber = Scrubber(
            sim, device, SequentialScrub(), max_passes=1,
            remediation=RemediationPolicy(),
        )
        sim.run(until=scrubber.start())
        assert scrubber.sectors_remapped == 1
        assert scrubber.remediation_stats.remap_failures == 1
        assert faults.active_count == 1
