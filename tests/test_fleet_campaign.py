"""Tests for fleet campaigns: determinism, checkpoint/resume, faults.

The campaign engine's central promises:

* fleet metrics are a pure function of the :class:`CampaignSpec` —
  independent of shard layout, worker count, interruption, and retry
  history;
* every completed shard is journalled durably, so an interrupted
  campaign resumes from checkpoints (counted in ``shards_resumed``)
  and finishes bit-identical to an uninterrupted run;
* a shard whose worker is killed mid-flight is retried and the
  campaign still completes identically;
* a shard that fails every attempt degrades the campaign to an
  explicit ``completeness < 1`` instead of poisoning it.
"""

import functools
import os
import signal

import pytest

from repro.fleet import (
    CampaignJournal,
    CampaignRunner,
    CampaignSpec,
    DriveClass,
    FleetSpec,
    JournalError,
    ScrubPolicySpec,
    campaign_digest,
    fleet_shard_task,
    group_seed,
)
from repro.parallel import RetryPolicy


def _spec(groups=60, shards=6, seed=3, mttf=2.0e4):
    """A small, loss-rich campaign that runs in well under a second.

    Latent windows are given explicitly so tests skip the (slower)
    schedule-driven MLET computation; the schedule path is covered by
    test_fleet_reliability.
    """
    return CampaignSpec(
        fleet=FleetSpec(
            groups=groups,
            disks_per_group=4,
            mttr_hours=24.0,
            spare_delay_hours=6.0,
            classes=(
                DriveClass(mttf_hours=mttf, lse_burst_rate_per_hour=2e-4),
            ),
        ),
        policies=(
            ScrubPolicySpec(name="weekly", latent_window_hours=84.0),
            ScrubPolicySpec(
                name="staggered", algorithm="staggered",
                latent_window_hours=60.0,
            ),
        ),
        mission_years=5.0,
        seed=seed,
        shards=shards,
    )


_FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_max=0.0, jitter=0.0)


def _kill_shard_once(sentinel_dir, **params):
    """Shard task wrapper that SIGKILLs its worker once for shard 2."""
    sentinel = os.path.join(sentinel_dir, f"shard-{params['shard_index']}")
    if params["shard_index"] == 2 and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return fleet_shard_task(**params)


def _fail_shard(**params):
    """Shard task wrapper where shard 1 is irrecoverable."""
    if params["shard_index"] == 1:
        raise RuntimeError("irrecoverable shard")
    return fleet_shard_task(**params)


class TestSpec:
    def test_digest_is_stable_and_spec_sensitive(self):
        assert campaign_digest(_spec()) == campaign_digest(_spec())
        assert campaign_digest(_spec()) != campaign_digest(_spec(seed=4))
        assert campaign_digest(_spec()) != campaign_digest(_spec(groups=61))

    def test_digest_ignores_shard_count_only_via_spec(self):
        # Shard layout IS part of the spec (it names the checkpoints),
        # so a resharded campaign gets a fresh journal…
        assert campaign_digest(_spec(shards=6)) != campaign_digest(_spec(shards=4))

    def test_group_seed_independent_of_shards(self):
        # …but the simulation seeds don't know shards exist.
        assert group_seed(3, 17) == group_seed(3, 17)
        assert group_seed(3, 17) != group_seed(3, 18)
        assert group_seed(3, 17) != group_seed(4, 17)

    def test_shard_ranges_partition_the_fleet(self):
        spec = _spec(groups=10, shards=4)
        ranges = spec.shard_ranges()
        assert sum(count for _, count in ranges) == 10
        assert ranges == [(0, 3), (3, 3), (6, 2), (8, 2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(raid_level="raid6")
        with pytest.raises(ValueError):
            FleetSpec(raid_level="raid1", disks_per_group=3)
        with pytest.raises(ValueError):
            DriveClass(preset="no-such-drive")
        with pytest.raises(ValueError):
            ScrubPolicySpec(name="x", algorithm="random")
        with pytest.raises(ValueError):
            CampaignSpec(
                policies=(
                    ScrubPolicySpec(name="dup"),
                    ScrubPolicySpec(name="dup", algorithm="staggered"),
                )
            )


class TestDeterminism:
    def test_metrics_independent_of_shard_layout(self):
        few = CampaignRunner(_spec(shards=3)).run()
        many = CampaignRunner(_spec(shards=9)).run()
        assert few.metrics_dict()["policies"] == many.metrics_dict()["policies"]

    def test_serial_and_supervised_runs_identical(self):
        serial = CampaignRunner(_spec(), workers=0).run()
        supervised = CampaignRunner(_spec(), workers=3, retry=_FAST).run()
        assert serial.metrics_dict() == supervised.metrics_dict()
        assert supervised.supervision["attempts"] == supervised.shards_total

    def test_scrubbing_enters_through_the_latent_window(self):
        result = CampaignRunner(_spec(groups=120)).run()
        weekly, staggered = result.policies
        # Same failure draws; the only difference is the LSE exposure
        # window, so the shorter window can never lose MORE groups.
        assert staggered.losses_by_mode["double"] == weekly.losses_by_mode["double"]
        assert staggered.losses_by_mode["lse"] <= weekly.losses_by_mode["lse"]


class TestCheckpointResume:
    def test_keyboard_interrupt_then_resume_is_bit_identical(self, tmp_path):
        baseline = CampaignRunner(_spec()).run()

        landed = []

        def bomb(shard_index, result):
            landed.append(shard_index)
            if len(landed) == 3:
                raise KeyboardInterrupt

        journal_dir = tmp_path / "journal"
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(_spec(), journal_dir=journal_dir, on_shard=bomb).run()
        assert len(landed) == 3

        resumed = CampaignRunner(_spec(), journal_dir=journal_dir).run()
        assert resumed.shards_resumed == 3
        assert resumed.shards_completed == resumed.shards_total == 6
        assert resumed.metrics_dict() == baseline.metrics_dict()

    def test_sigkilled_shard_worker_retried_and_identical(self, tmp_path):
        baseline = CampaignRunner(_spec()).run()
        task = functools.partial(_kill_shard_once, str(tmp_path))
        survived = CampaignRunner(
            _spec(), journal_dir=tmp_path / "journal",
            workers=2, retry=_FAST, task=task,
        ).run()
        assert survived.supervision["worker_deaths"] == 1
        assert survived.supervision["retries"] == 1
        assert survived.completeness == 1.0
        assert survived.metrics_dict() == baseline.metrics_dict()

    def test_full_resume_does_zero_new_work(self, tmp_path):
        journal_dir = tmp_path / "journal"
        first = CampaignRunner(_spec(), journal_dir=journal_dir).run()

        def forbidden(**params):
            raise AssertionError("resume must not recompute shards")

        second = CampaignRunner(
            _spec(), journal_dir=journal_dir, task=forbidden
        ).run()
        assert second.shards_resumed == 6
        assert second.metrics_dict() == first.metrics_dict()

    def test_journal_refuses_foreign_campaign(self, tmp_path):
        journal_dir = tmp_path / "journal"
        CampaignRunner(_spec(), journal_dir=journal_dir).run()
        with pytest.raises(JournalError, match="refusing to mix"):
            CampaignJournal(journal_dir, _spec(seed=99))

    def test_corrupt_checkpoint_degrades_to_recompute(self, tmp_path):
        journal_dir = tmp_path / "journal"
        first = CampaignRunner(_spec(), journal_dir=journal_dir).run()
        journal = CampaignJournal(journal_dir, _spec())
        # Truncate one checkpoint on disk; the resume must evict it,
        # recompute that shard, and still merge identically.
        key = journal.completed()[2]
        path = journal.cache._path(key)
        path.write_bytes(path.read_bytes()[:10])
        second = CampaignRunner(_spec(), journal_dir=journal_dir).run()
        assert second.shards_resumed == 5
        assert second.metrics_dict() == first.metrics_dict()


class TestGracefulDegradation:
    def test_irrecoverable_shard_reports_partial_completeness(self):
        result = CampaignRunner(
            _spec(), workers=2, retry=_FAST, task=_fail_shard
        ).run()
        assert result.shards_failed == 1
        assert result.failed_shards == [1]
        assert 0.0 < result.completeness < 1.0
        spec = _spec()
        done_groups = sum(
            count
            for index, (start, count) in enumerate(spec.shard_ranges())
            if index != 1
        )
        assert result.completeness == done_groups / spec.fleet.groups
        # Surviving shards still produce estimates over their groups.
        assert all(p.groups == done_groups for p in result.policies)
        assert result.telemetry["gauges"]["fleet.completeness"] < 1.0
