"""Tests for the LSE/MLET model (repro.core.mlet)."""

import numpy as np
import pytest

from repro.core import SequentialScrub, StaggeredScrub
from repro.core.mlet import (
    LSEBurst,
    generate_bursts,
    mean_latent_error_time,
    sector_visit_times,
)

TOTAL = 100_000
STEP = 128
RATE = 10e6  # bytes/s


def rng():
    return np.random.default_rng(5)


class TestVisitTimes:
    def test_sequential_visits_in_order(self):
        visits, duration = sector_visit_times(
            SequentialScrub(), TOTAL, STEP, RATE
        )
        assert len(visits) == TOTAL
        assert duration == pytest.approx(TOTAL * 512 / RATE)
        assert np.all(np.diff(visits) >= 0)

    def test_staggered_covers_everything(self):
        visits, duration = sector_visit_times(
            StaggeredScrub(regions=16), TOTAL, STEP, RATE
        )
        assert np.all(visits >= 0)
        assert duration == pytest.approx(TOTAL * 512 / RATE)

    def test_staggered_spreads_regions_early(self):
        visits, duration = sector_visit_times(
            StaggeredScrub(regions=10), TOTAL, STEP, RATE
        )
        region = TOTAL // 10
        first_sector_each_region = visits[::region][:10]
        # Every region's first segment is probed in the first round.
        assert np.all(first_sector_each_region < duration / 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            sector_visit_times(SequentialScrub(), TOTAL, STEP, 0)


class TestBurstGeneration:
    def test_bursts_within_bounds(self):
        bursts = generate_bursts(rng(), TOTAL, 500, horizon=1000.0)
        assert len(bursts) == 500
        for burst in bursts:
            assert 0 <= burst.start_sector < TOTAL
            assert burst.start_sector + burst.length <= TOTAL
            assert 0 <= burst.time < 1000.0
            assert burst.length >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_bursts(rng(), TOTAL, 0, 10.0)
        with pytest.raises(ValueError):
            generate_bursts(rng(), TOTAL, 5, 10.0, mean_length=0.5)


class TestMLET:
    def test_single_error_sequential_is_half_pass(self):
        visits, duration = sector_visit_times(
            SequentialScrub(), TOTAL, STEP, RATE
        )
        bursts = generate_bursts(
            rng(), TOTAL, 4000, horizon=duration * 10, mean_length=1.0,
            max_length=1,
        )
        mlet = mean_latent_error_time(visits, duration, bursts)
        assert mlet == pytest.approx(duration / 2, rel=0.06)

    def test_staggered_beats_sequential_on_bursts(self):
        """The Oprea-Juels result the paper builds on: for spatially
        bursty LSEs, staggered scrubbing detects sooner."""
        bursts = generate_bursts(
            rng(), TOTAL, 3000, horizon=1e6, mean_length=3000.0,
            max_length=20_000,
        )
        seq_visits, duration = sector_visit_times(
            SequentialScrub(), TOTAL, STEP, RATE
        )
        stag_visits, stag_duration = sector_visit_times(
            StaggeredScrub(regions=16), TOTAL, STEP, RATE
        )
        assert stag_duration == pytest.approx(duration)
        seq_mlet = mean_latent_error_time(seq_visits, duration, bursts)
        stag_mlet = mean_latent_error_time(stag_visits, stag_duration, bursts)
        assert stag_mlet < 0.7 * seq_mlet

    def test_more_regions_not_worse_for_large_bursts(self):
        bursts = generate_bursts(
            rng(), TOTAL, 2000, horizon=1e6, mean_length=5000.0,
            max_length=30_000,
        )
        mlets = []
        for regions in (1, 4, 16, 64):
            visits, duration = sector_visit_times(
                StaggeredScrub(regions=regions), TOTAL, STEP, RATE
            )
            mlets.append(mean_latent_error_time(visits, duration, bursts))
        assert mlets[-1] < mlets[0]

    def test_detection_delay_never_negative_or_above_pass(self):
        visits, duration = sector_visit_times(
            StaggeredScrub(regions=8), TOTAL, STEP, RATE
        )
        burst = LSEBurst(time=duration * 0.37, start_sector=123, length=10)
        mlet = mean_latent_error_time(visits, duration, [burst])
        assert 0 <= mlet <= duration

    def test_validation(self):
        visits, duration = sector_visit_times(
            SequentialScrub(), TOTAL, STEP, RATE
        )
        with pytest.raises(ValueError):
            mean_latent_error_time(visits, 0.0, [LSEBurst(0, 0, 1)])
        with pytest.raises(ValueError):
            mean_latent_error_time(visits, duration, [])
