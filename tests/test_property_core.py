"""Property-based tests for scrub orders, policies and analysis."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.service_model import ScrubServiceModel
from repro.analysis.slowdown import simulate_fixed_waiting
from repro.core import SequentialScrub, StaggeredScrub
from repro.core.adaptive import ExponentialSchedule, LinearSchedule
from repro.core.policies import (
    LosslessWaitingPolicy,
    OraclePolicy,
    WaitingPolicy,
)
from repro.stats.hazard import usable_fraction
from repro.stats.tails import tail_concentration

#: A cheap linear service model (no drive measurement needed).
SERVICE = ScrubServiceModel([65536, 4 * 1024 * 1024], [0.005, 0.045])

durations_strategy = st.lists(
    st.floats(1e-6, 1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
).map(np.asarray)


class TestScrubOrderProperties:
    @given(
        total=st.integers(1, 3000),
        step=st.integers(1, 200),
        regions=st.integers(1, 40),
    )
    @settings(max_examples=200)
    def test_staggered_covers_each_sector_exactly_once(
        self, total, step, regions
    ):
        algorithm = StaggeredScrub(regions)
        algorithm.reset(total, step)
        seen = np.zeros(total, dtype=int)
        while True:
            extent = algorithm.next_extent()
            if extent is None:
                break
            lbn, sectors = extent
            assert sectors >= 1
            assert lbn + sectors <= total
            seen[lbn : lbn + sectors] += 1
        assert np.all(seen == 1)

    @given(total=st.integers(1, 3000), step=st.integers(1, 200))
    @settings(max_examples=100)
    def test_sequential_extents_are_adjacent_and_complete(self, total, step):
        algorithm = SequentialScrub()
        algorithm.reset(total, step)
        expected_next = 0
        while True:
            extent = algorithm.next_extent()
            if extent is None:
                break
            lbn, sectors = extent
            assert lbn == expected_next
            expected_next += sectors
        assert expected_next == total


class TestPolicyProperties:
    @given(durations=durations_strategy, threshold=st.floats(0, 1e3))
    @settings(max_examples=200)
    def test_waiting_utilisation_bounded_by_total_idle(
        self, durations, threshold
    ):
        policy = WaitingPolicy(threshold)
        utilised = policy.utilised_time(durations)
        assert np.all(utilised >= 0)
        assert utilised.sum() <= durations.sum() + 1e-9
        assert np.all(utilised <= durations)

    @given(
        durations=durations_strategy,
        thresholds=st.tuples(st.floats(0, 100), st.floats(0, 100)),
    )
    @settings(max_examples=200)
    def test_waiting_monotone_in_threshold(self, durations, thresholds):
        low, high = sorted(thresholds)
        low_policy, high_policy = WaitingPolicy(low), WaitingPolicy(high)
        assert (
            high_policy.fired_mask(durations).sum()
            <= low_policy.fired_mask(durations).sum()
        )
        assert (
            high_policy.utilised_time(durations).sum()
            <= low_policy.utilised_time(durations).sum() + 1e-9
        )

    @given(durations=durations_strategy, budget=st.floats(0, 1))
    @settings(max_examples=200)
    def test_oracle_is_optimal_for_its_budget(self, durations, budget):
        """No same-collision-count selection beats the Oracle."""
        oracle = OraclePolicy(budget)
        fired = oracle.fired_mask(durations)
        count = int(fired.sum())
        utilised = oracle.utilised_time(durations).sum()
        best_possible = np.sort(durations)[::-1][:count].sum()
        assert utilised == pytest.approx(best_possible, rel=1e-9, abs=1e-9)

    @given(durations=durations_strategy, threshold=st.floats(0, 1e3))
    @settings(max_examples=200)
    def test_lossless_dominates_waiting(self, durations, threshold):
        waiting = WaitingPolicy(threshold)
        lossless = LosslessWaitingPolicy(threshold)
        assert np.array_equal(
            waiting.fired_mask(durations), lossless.fired_mask(durations)
        )
        assert (
            lossless.utilised_time(durations).sum()
            >= waiting.utilised_time(durations).sum() - 1e-12
        )


class TestHazardProperties:
    @given(durations=durations_strategy)
    @settings(max_examples=200)
    def test_tail_concentration_is_a_valid_curve(self, durations):
        fractions, idle = tail_concentration(durations + 1e-9)
        assert fractions[-1] == pytest.approx(1.0)
        assert idle[-1] == pytest.approx(1.0)
        assert np.all(np.diff(idle) >= -1e-12)
        # Largest-first ordering: the curve lies above the diagonal.
        assert np.all(idle >= fractions - 1e-9)

    @given(durations=durations_strategy, taus=st.lists(
        st.floats(0, 1e3), min_size=1, max_size=5).map(np.asarray))
    @settings(max_examples=200)
    def test_usable_fraction_within_unit_interval(self, durations, taus):
        result = usable_fraction(durations + 1e-9, taus)
        assert np.all(result >= -1e-12)
        assert np.all(result <= 1.0 + 1e-12)


class TestSlowdownProperties:
    @given(
        durations=durations_strategy,
        threshold=st.floats(0, 10),
        size_kb=st.sampled_from([64, 256, 1024, 4096]),
    )
    @settings(max_examples=150)
    def test_fixed_waiting_accounting_is_consistent(
        self, durations, threshold, size_kb
    ):
        total = max(len(durations), 1)
        result = simulate_fixed_waiting(
            durations, threshold, size_kb * 1024, SERVICE, total, 1e4
        )
        assert result.collisions <= len(durations)
        assert result.mean_slowdown >= 0
        service = float(SERVICE.time(float(size_kb * 1024)))
        assert result.max_slowdown <= service + 1e-12
        assert result.scrub_bytes >= 0
        # Scrubbed time never exceeds the idle time beyond thresholds
        # (plus one in-flight request per fired interval).
        fired = durations > threshold
        budget = float(
            np.sum(durations[fired] - threshold) + fired.sum() * service
        )
        assert result.scrub_bytes / (size_kb * 1024) * service <= budget + 1e-6

    @given(
        start_kb=st.sampled_from([64, 128]),
        factor=st.floats(1.1, 4.0),
        index=st.integers(0, 60),
        elapsed=st.floats(0, 1e4),
    )
    @settings(max_examples=200)
    def test_schedules_respect_caps(self, start_kb, factor, index, elapsed):
        cap = 4 * 1024 * 1024
        for schedule in (
            ExponentialSchedule(start_kb * 1024, factor, cap),
            LinearSchedule(start_kb * 1024, factor, 65536, cap),
        ):
            size = schedule.size_at(index, elapsed)
            assert 512 <= size <= cap
            assert size % 512 == 0
            # Non-decreasing in the request index.
            assert schedule.size_at(index + 1, elapsed) >= size
