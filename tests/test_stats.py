"""Tests for the statistics package (repro.stats)."""

import numpy as np
import pytest

from repro.stats import (
    IdleStats,
    acf,
    anova_period,
    expected_remaining,
    fit_ar,
    fraction_intervals_longer,
    has_significant_autocorrelation,
    hurst_exponent,
    percentile_remaining,
    select_ar_order,
    summarize_idle,
    tail_concentration,
    usable_fraction,
)
from repro.stats.tails import idle_share_of_largest


def rng():
    return np.random.default_rng(42)


class TestSummarizeIdle:
    def test_exponential_cov_near_one(self):
        sample = rng().exponential(0.5, size=50_000)
        stats = summarize_idle(sample)
        assert stats.mean == pytest.approx(0.5, rel=0.05)
        assert 0.9 < stats.cov < 1.1
        assert stats.is_memoryless_like

    def test_lognormal_cov_large(self):
        sample = rng().lognormal(0, 2.0, size=50_000)
        stats = summarize_idle(sample)
        assert stats.cov > 3.0
        assert not stats.is_memoryless_like

    def test_idle_fraction(self):
        stats = summarize_idle(np.array([1.0, 2.0, 3.0]), span=12.0)
        assert stats.idle_fraction == pytest.approx(0.5)
        assert stats.total_idle == 6.0
        assert stats.count == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_idle(np.array([]))
        with pytest.raises(ValueError):
            summarize_idle(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            summarize_idle(np.array([1.0]), span=-1)


class TestAnovaPeriod:
    def _periodic_counts(self, period, repeats, noise=0.1):
        base = 100 + 80 * np.sin(2 * np.pi * np.arange(period) / period)
        counts = np.tile(base, repeats)
        return counts * (1 + noise * rng().standard_normal(len(counts)))

    def test_detects_injected_period(self):
        counts = self._periodic_counts(24, 7)
        result = anova_period(counts, max_period=36)
        assert result.period == 24
        assert result.p_value < 0.01

    def test_no_period_in_noise(self):
        counts = rng().poisson(100, size=24 * 7).astype(float)
        result = anova_period(counts, max_period=36)
        assert result.period == 1
        assert result.f_statistic == 0.0

    def test_shorter_period(self):
        counts = self._periodic_counts(12, 10)
        result = anova_period(counts, max_period=30)
        # 12 or a multiple of 12 should dominate; the strongest is 12's
        # structure so the result must be divisible by 12... or 12 itself.
        assert result.period % 12 == 0

    def test_candidate_list_respected(self):
        counts = self._periodic_counts(24, 7)
        result = anova_period(counts, candidates=[6, 24])
        assert result.period == 24
        assert {c[0] for c in result.candidates} == {6, 24}

    def test_validation(self):
        with pytest.raises(ValueError):
            anova_period(np.ones(3))
        with pytest.raises(ValueError):
            anova_period(np.ones((4, 4)))
        with pytest.raises(ValueError):
            anova_period(np.ones(100), candidates=[1])


class TestAutocorrelation:
    def test_acf_lag_zero_is_one(self):
        x = rng().standard_normal(1000)
        values = acf(x, 5)
        assert values[0] == pytest.approx(1.0)

    def test_acf_of_ar1(self):
        noise = rng().standard_normal(200_000)
        x = np.empty_like(noise)
        x[0] = noise[0]
        phi = 0.7
        for i in range(1, len(noise)):
            x[i] = phi * x[i - 1] + noise[i]
        values = acf(x, 3)
        assert values[1] == pytest.approx(phi, abs=0.02)
        assert values[2] == pytest.approx(phi**2, abs=0.03)

    def test_acf_validation(self):
        with pytest.raises(ValueError):
            acf(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            acf(np.ones(10) * 3, 2)  # zero variance
        with pytest.raises(ValueError):
            acf(np.arange(10.0), 10)

    def test_significance_on_white_noise(self):
        x = rng().standard_normal(20_000)
        assert not has_significant_autocorrelation(x, lags=10)

    def test_significance_on_correlated(self):
        noise = rng().standard_normal(20_000)
        x = np.convolve(noise, np.ones(5) / 5, mode="valid")
        assert has_significant_autocorrelation(x, lags=10)

    def test_rank_method_handles_heavy_tails(self):
        heavy = np.exp(3.0 * rng().standard_normal(50_000))
        shuffled = heavy.copy()
        assert not has_significant_autocorrelation(shuffled, method="rank")

    def test_method_validation(self):
        with pytest.raises(ValueError):
            has_significant_autocorrelation(np.ones(100), method="magic")

    def test_hurst_of_white_noise(self):
        x = rng().standard_normal(100_000)
        assert hurst_exponent(x) == pytest.approx(0.5, abs=0.08)

    def test_hurst_validation(self):
        with pytest.raises(ValueError):
            hurst_exponent(np.ones(10))


class TestARFitting:
    def _ar1(self, phi, n=100_000):
        noise = rng().standard_normal(n)
        x = np.empty(n)
        x[0] = noise[0]
        for i in range(1, n):
            x[i] = 5.0 + phi * (x[i - 1] - 5.0) + noise[i]
        return x

    def test_recovers_ar1_coefficient(self):
        x = self._ar1(0.6)
        model = fit_ar(x, 1)
        assert model.coefficients[0] == pytest.approx(0.6, abs=0.02)
        assert model.mean == pytest.approx(5.0, abs=0.1)

    def test_prediction_moves_toward_mean(self):
        model = fit_ar(self._ar1(0.6), 1)
        high = model.predict([20.0])
        assert model.mean < high < 20.0

    def test_prediction_with_short_history_pads_with_mean(self):
        model = fit_ar(self._ar1(0.6), 3)
        assert model.predict([]) == pytest.approx(model.mean)

    def test_predict_series_matches_pointwise(self):
        x = self._ar1(0.5, n=500)
        model = fit_ar(x, 2)
        series = model.predict_series(x)
        assert series[10] == pytest.approx(model.predict(x[8:10]), rel=1e-9)
        # The first prediction has no history: it's the mean.
        assert series[0] == pytest.approx(model.mean)

    def test_aic_selects_reasonable_order(self):
        x = self._ar1(0.6, n=50_000)
        model = select_ar_order(x, max_order=6)
        assert 1 <= model.order <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_ar(np.ones(100) * 2.0 + np.arange(100) * 0, 0)
        with pytest.raises(ValueError):
            fit_ar(np.array([1.0, 2.0]), 5)
        with pytest.raises(ValueError):
            select_ar_order(np.array([1.0, 2.0]))


class TestHazard:
    def test_exponential_has_constant_remaining(self):
        sample = rng().exponential(2.0, size=400_000)
        taus = np.array([0.1, 1.0, 3.0])
        remaining = expected_remaining(sample, taus)
        assert np.allclose(remaining, 2.0, rtol=0.1)

    def test_heavy_tail_has_increasing_remaining(self):
        sample = np.exp(2.5 * rng().standard_normal(200_000))
        taus = np.array([0.01, 0.1, 1.0, 10.0])
        remaining = expected_remaining(sample, taus)
        assert np.all(np.diff(remaining) > 0)

    def test_remaining_nan_beyond_max(self):
        remaining = expected_remaining(np.array([1.0, 2.0]), np.array([5.0]))
        assert np.isnan(remaining[0])

    def test_percentile_remaining_bounds(self):
        sample = rng().exponential(1.0, size=100_000)
        p1 = percentile_remaining(sample, np.array([0.5]), q=1.0)
        p50 = percentile_remaining(sample, np.array([0.5]), q=50.0)
        assert 0 <= p1[0] < p50[0]

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile_remaining(np.array([1.0]), np.array([0.1]), q=0.0)

    def test_usable_fraction_decreases(self):
        sample = np.exp(2.0 * rng().standard_normal(100_000))
        taus = np.array([0.0, 0.1, 1.0, 10.0])
        usable = usable_fraction(sample, taus)
        assert usable[0] == pytest.approx(1.0)
        assert np.all(np.diff(usable) <= 0)
        assert np.all(usable >= 0)

    def test_fraction_intervals_longer(self):
        sample = np.array([1.0, 2.0, 3.0, 4.0])
        fractions = fraction_intervals_longer(sample, np.array([0.0, 2.5, 10.0]))
        assert fractions.tolist() == [1.0, 0.5, 0.0]

    def test_heavy_tail_waiting_tradeoff(self):
        """Fig. 13's claim: waiting 100 ms keeps most idle time usable
        while selecting only a small fraction of intervals."""
        sample = np.exp(2.5 * rng().standard_normal(200_000)) * 0.02
        tau = np.array([0.1])
        assert usable_fraction(sample, tau)[0] > 0.5
        assert fraction_intervals_longer(sample, tau)[0] < 0.3

    def test_empty_validation(self):
        with pytest.raises(ValueError):
            expected_remaining(np.array([]), np.array([1.0]))


class TestTails:
    def test_concentration_curve_shape(self):
        sample = np.exp(2.5 * rng().standard_normal(100_000))
        fractions, idle = tail_concentration(sample)
        assert idle[-1] == pytest.approx(1.0)
        assert np.all(np.diff(idle) >= 0)
        assert np.all(idle >= fractions - 1e-12)

    def test_heavy_tail_concentrates(self):
        """The paper's 80/15 structure for heavy-tailed idle time."""
        sample = np.exp(3.0 * rng().standard_normal(100_000))
        assert idle_share_of_largest(sample, 0.15) > 0.8

    def test_uniform_sample_no_concentration(self):
        sample = np.full(1000, 2.0)
        assert idle_share_of_largest(sample, 0.15) == pytest.approx(0.15, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            tail_concentration(np.array([]))
        with pytest.raises(ValueError):
            tail_concentration(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            idle_share_of_largest(np.array([1.0]), 0.0)
