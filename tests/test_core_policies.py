"""Tests for the idle-scheduling policies (repro.core.policies)."""

import numpy as np
import pytest

from repro.core.policies import (
    ARPolicy,
    ARWaitingPolicy,
    LosslessWaitingPolicy,
    OraclePolicy,
    WaitingPolicy,
)
from repro.stats.ar import fit_ar


def heavy_tailed_durations(n=20_000, seed=3):
    rng = np.random.default_rng(seed)
    return np.exp(2.2 * rng.standard_normal(n)) * 0.05


class TestWaitingPolicy:
    def test_offsets_are_threshold(self):
        durations = np.array([0.5, 2.0, 0.05])
        policy = WaitingPolicy(0.1)
        assert np.allclose(policy.fire_offsets(durations), 0.1)

    def test_fires_only_in_long_intervals(self):
        durations = np.array([0.5, 2.0, 0.05])
        policy = WaitingPolicy(0.1)
        assert policy.fired_mask(durations).tolist() == [True, True, False]

    def test_utilised_time(self):
        durations = np.array([0.5, 2.0, 0.05])
        policy = WaitingPolicy(0.1)
        assert np.allclose(policy.utilised_time(durations), [0.4, 1.9, 0.0])

    def test_zero_threshold_uses_everything(self):
        durations = np.array([1.0, 2.0])
        policy = WaitingPolicy(0.0)
        assert policy.utilised_time(durations).sum() == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaitingPolicy(-1)
        with pytest.raises(ValueError):
            WaitingPolicy(0.1).fire_offsets(np.array([[1.0]]))


class TestLosslessWaiting:
    def test_same_selection_full_utilisation(self):
        durations = heavy_tailed_durations()
        threshold = 0.5
        waiting = WaitingPolicy(threshold)
        lossless = LosslessWaitingPolicy(threshold)
        assert np.array_equal(
            waiting.fired_mask(durations), lossless.fired_mask(durations)
        )
        assert (
            lossless.utilised_time(durations).sum()
            > waiting.utilised_time(durations).sum()
        )

    def test_lossless_equals_oracle_at_same_budget(self):
        """The paper's Fig. 14 observation, exact in this model."""
        durations = heavy_tailed_durations()
        threshold = 1.0
        lossless = LosslessWaitingPolicy(threshold)
        fired = lossless.fired_mask(durations)
        oracle = OraclePolicy(fired.mean())
        assert oracle.utilised_time(durations).sum() == pytest.approx(
            lossless.utilised_time(durations).sum(), rel=0.01
        )


class TestOracle:
    def test_uses_exactly_the_longest(self):
        durations = np.array([1.0, 5.0, 3.0, 0.5])
        policy = OraclePolicy(0.5)
        assert policy.fired_mask(durations).tolist() == [False, True, True, False]
        assert policy.utilised_time(durations).sum() == pytest.approx(8.0)

    def test_zero_budget(self):
        durations = np.array([1.0, 2.0])
        assert OraclePolicy(0.0).utilised_time(durations).sum() == 0.0

    def test_full_budget(self):
        durations = np.array([1.0, 2.0])
        assert OraclePolicy(1.0).utilised_time(durations).sum() == 3.0

    def test_oracle_dominates_waiting(self):
        """At equal collision budget the Oracle's utilisation is an
        upper bound on Waiting's."""
        durations = heavy_tailed_durations()
        waiting = WaitingPolicy(0.5)
        budget = waiting.fired_mask(durations).mean()
        oracle = OraclePolicy(budget)
        assert (
            oracle.utilised_time(durations).sum()
            >= waiting.utilised_time(durations).sum()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            OraclePolicy(1.5)


class TestARPolicy:
    def _correlated_durations(self, n=30_000, phi=0.8, seed=9):
        rng = np.random.default_rng(seed)
        noise = rng.standard_normal(n) * np.sqrt(1 - phi * phi)
        logs = np.empty(n)
        logs[0] = rng.standard_normal()
        for i in range(1, n):
            logs[i] = phi * logs[i - 1] + noise[i]
        return np.exp(logs)

    def test_fires_from_interval_start(self):
        durations = self._correlated_durations()
        policy = ARPolicy(threshold=0.0)
        offsets = policy.fire_offsets(durations)
        assert np.all(offsets[np.isfinite(offsets)] == 0.0)

    def test_threshold_reduces_fires(self):
        durations = self._correlated_durations()
        predictions = ARPolicy(0).predictions(durations)
        low, high = np.percentile(predictions, [20, 80])
        fires_low = ARPolicy(low).fired_mask(durations).sum()
        fires_high = ARPolicy(high).fired_mask(durations).sum()
        assert fires_high < fires_low

    def test_predictions_better_than_chance_on_ar_data(self):
        durations = self._correlated_durations()
        policy = ARPolicy(0.0)
        predictions = policy.predictions(durations)
        rank_corr = np.corrcoef(
            np.argsort(np.argsort(predictions)),
            np.argsort(np.argsort(durations)),
        )[0, 1]
        assert rank_corr > 0.3

    def test_prefitted_model_used(self):
        durations = self._correlated_durations()
        model = fit_ar(durations, 2)
        policy = ARPolicy(0.5, model=model)
        assert np.allclose(
            policy.predictions(durations), model.predict_series(durations)
        )

    def test_waiting_dominates_ar_on_heavy_tails(self):
        """The paper's central Fig. 14 ordering."""
        durations = heavy_tailed_durations(n=50_000)
        ar = ARPolicy(np.median(ARPolicy(0).predictions(durations)))
        ar_fired = ar.fired_mask(durations)
        ar_util = ar.utilised_time(durations).sum() / durations.sum()
        # A Waiting policy matched to the same collision count:
        thresholds = np.percentile(durations, 100 * (1 - ar_fired.mean()))
        waiting = WaitingPolicy(float(thresholds))
        w_util = waiting.utilised_time(durations).sum() / durations.sum()
        w_fired = waiting.fired_mask(durations).mean()
        assert w_fired <= ar_fired.mean() * 1.05
        assert w_util > ar_util

    def test_validation(self):
        with pytest.raises(ValueError):
            ARPolicy(-1)
        with pytest.raises(ValueError):
            ARPolicy(0, max_order=0)


class TestARWaiting:
    def test_subset_of_waiting(self):
        durations = heavy_tailed_durations()
        waiting = WaitingPolicy(0.2)
        combined = ARWaitingPolicy(0.2, ar_threshold=1e9)
        assert combined.fired_mask(durations).sum() == 0
        # With any AR threshold the combined policy fires in a subset of
        # Waiting's intervals (predictions may be negative, so even a
        # zero threshold can veto).
        loose = ARWaitingPolicy(0.2, ar_threshold=0.0)
        loose_fired = loose.fired_mask(durations)
        waiting_fired = waiting.fired_mask(durations)
        assert np.all(waiting_fired[loose_fired])
        assert 0 < loose_fired.sum() <= waiting_fired.sum()

    def test_fires_at_wait_threshold(self):
        durations = heavy_tailed_durations()
        combined = ARWaitingPolicy(0.3, ar_threshold=0.0)
        offsets = combined.fire_offsets(durations)
        fired = offsets < durations
        assert np.all(offsets[fired] == 0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ARWaitingPolicy(-0.1, 0.1)
