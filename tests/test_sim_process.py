"""Tests for generator-based processes (repro.sim.process)."""

import pytest

from repro.sim import Interrupt, Simulation


def test_process_runs_to_completion():
    sim = Simulation()
    steps = []

    def proc(sim):
        steps.append(sim.now)
        yield sim.timeout(1)
        steps.append(sim.now)
        yield sim.timeout(2)
        steps.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert steps == [0.0, 1.0, 3.0]


def test_process_return_value_becomes_event_value():
    sim = Simulation()

    def proc(sim):
        yield sim.timeout(1)
        return {"answer": 42}

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == {"answer": 42}


def test_process_requires_generator():
    sim = Simulation()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_process_waits_on_another_process():
    sim = Simulation()

    def child(sim):
        yield sim.timeout(3)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return result

    p = sim.process(parent(sim))
    assert sim.run(until=p) == "child-result"


def test_yield_non_event_fails_process():
    sim = Simulation()

    def proc(sim):
        yield "nonsense"

    p = sim.process(proc(sim))
    with pytest.raises(RuntimeError, match="non-event"):
        sim.run()
    assert not p.is_alive


def test_yield_foreign_event_fails_process():
    sim, other = Simulation(), Simulation()

    def proc(sim):
        yield other.timeout(1)

    sim.process(proc(sim))
    with pytest.raises(RuntimeError, match="another simulation"):
        sim.run()


def test_exception_in_process_propagates():
    sim = Simulation()

    def proc(sim):
        yield sim.timeout(1)
        raise ValueError("exploded")

    sim.process(proc(sim))
    with pytest.raises(ValueError, match="exploded"):
        sim.run()


def test_failed_process_caught_by_waiter():
    sim = Simulation()
    caught = {}

    def child(sim):
        yield sim.timeout(1)
        raise ValueError("child failure")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            caught["msg"] = str(exc)

    sim.process(parent(sim))
    sim.run()
    assert caught["msg"] == "child failure"


def test_interrupt_delivers_cause():
    sim = Simulation()
    seen = {}

    def victim(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as exc:
            seen["cause"] = exc.cause
            seen["time"] = sim.now

    def attacker(sim, victim_proc):
        yield sim.timeout(4)
        victim_proc.interrupt("preempted")

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert seen == {"cause": "preempted", "time": 4.0}


def test_interrupted_process_can_continue():
    sim = Simulation()
    trace = []

    def victim(sim):
        try:
            yield sim.timeout(100)
        except Interrupt:
            trace.append(("interrupted", sim.now))
        yield sim.timeout(5)
        trace.append(("done", sim.now))

    def attacker(sim, v):
        yield sim.timeout(2)
        v.interrupt()

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert trace == [("interrupted", 2.0), ("done", 7.0)]


def test_stale_target_does_not_resume_after_interrupt():
    """The originally awaited timeout must not wake an interrupted process."""
    sim = Simulation()
    wakeups = []

    def victim(sim):
        try:
            yield sim.timeout(10)
            wakeups.append("timeout")
        except Interrupt:
            wakeups.append("interrupt")
        yield sim.timeout(100)
        wakeups.append("second")

    def attacker(sim, v):
        yield sim.timeout(1)
        v.interrupt()

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert wakeups == ["interrupt", "second"]


def test_interrupt_finished_process_raises():
    sim = Simulation()

    def quick(sim):
        yield sim.timeout(1)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError, match="finished"):
        p.interrupt()


def test_self_interrupt_rejected():
    sim = Simulation()

    def selfish(sim):
        yield sim.timeout(0)
        sim.active_process.interrupt()

    sim.process(selfish(sim))
    with pytest.raises(RuntimeError, match="cannot interrupt itself"):
        sim.run()


def test_unhandled_interrupt_fails_process_but_waiter_can_catch():
    sim = Simulation()
    caught = {}

    def victim(sim):
        yield sim.timeout(100)

    def parent(sim, v):
        try:
            yield v
        except Interrupt as exc:
            caught["cause"] = exc.cause

    v = sim.process(victim(sim))
    sim.process(parent(sim, v))

    def attacker(sim, v):
        yield sim.timeout(1)
        v.interrupt("kill")

    sim.process(attacker(sim, v))
    sim.run()
    assert caught["cause"] == "kill"


def test_is_alive_lifecycle():
    sim = Simulation()

    def proc(sim):
        yield sim.timeout(5)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_active_process_visible_during_execution():
    sim = Simulation()
    seen = []

    def proc(sim):
        seen.append(sim.active_process)
        yield sim.timeout(1)

    p = sim.process(proc(sim))
    sim.run()
    assert seen == [p]
    assert sim.active_process is None


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulation()
    t = sim.timeout(1, "old-value")
    sim.run()

    def proc(sim):
        value = yield t
        return (sim.now, value)

    p = sim.process(proc(sim))
    assert sim.run(until=p) == (1.0, "old-value")


def test_many_processes_interleave_deterministically():
    sim = Simulation()
    order = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    for name, delay in [("a", 3), ("b", 1), ("c", 2), ("d", 1)]:
        sim.process(proc(sim, name, delay))
    sim.run()
    assert order == ["b", "d", "c", "a"]
