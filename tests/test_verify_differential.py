"""Tests for the differential oracle (repro.verify.differential)."""

import numpy as np
import pytest

from repro.verify import (
    AXES,
    DifferentialMismatch,
    check_parallel,
    outcome_signature,
    run_axes,
    run_scenario,
)

#: One cheap scenario per family; the oracle must pass all axes on each
#: (the ISSUE acceptance criterion asks for >= 3 scenario families).
SCENARIOS = {
    "synthetic": {"family": "synthetic", "horizon": 0.2, "seed": 3},
    "trace-replay": {
        "family": "trace-replay",
        "horizon": 0.2,
        "seed": 3,
        "chunk_requests": 16,
    },
    "fault-injected": {
        "family": "fault-injected",
        "model": "bernoulli",
        "cache_enabled": False,
        "horizon": 0.2,
        "seed": 3,
    },
}


class TestSignatures:
    def test_signature_deterministic(self):
        params = SCENARIOS["synthetic"]
        a = run_scenario(**params)
        b = run_scenario(**params)
        assert outcome_signature(a) == outcome_signature(b)

    def test_signature_sensitive_to_seed(self):
        base = SCENARIOS["synthetic"]
        a = run_scenario(**base)
        b = run_scenario(**{**base, "seed": 4})
        assert outcome_signature(a) != outcome_signature(b)

    def test_signature_sensitive_to_array_content(self):
        a = run_scenario(**SCENARIOS["synthetic"])
        b = run_scenario(**SCENARIOS["synthetic"])
        # A single ULP of drift in one response time must flip it.
        b["response_times"] = b["response_times"].copy()
        b["response_times"][0] = np.nextafter(
            b["response_times"][0], np.inf
        )
        assert outcome_signature(a) != outcome_signature(b)

    def test_include_telemetry_switch(self):
        params = dict(SCENARIOS["synthetic"], telemetry="recorder")
        outcome = run_scenario(**params)
        with_t = outcome_signature(outcome, include_telemetry=True)
        without = outcome_signature(outcome, include_telemetry=False)
        assert with_t != without
        bare = run_scenario(**SCENARIOS["synthetic"])
        assert outcome_signature(bare) == without


class TestRunAxes:
    @pytest.mark.parametrize("family", sorted(SCENARIOS))
    def test_all_axes_agree(self, family):
        signatures = run_axes(SCENARIOS[family])
        assert set(signatures) == {
            "kernel-twin", "kernel-backend", "feed", "telemetry", "monitor"
        }
        assert all(len(s) == 64 for s in signatures.values())
        # kernel-twin, kernel-backend and telemetry all compare
        # core-only outcomes of the same scenario, so their agreed
        # signatures coincide.
        assert signatures["kernel-twin"] == signatures["telemetry"]
        assert signatures["kernel-twin"] == signatures["kernel-backend"]

    def test_axis_subset(self):
        signatures = run_axes(SCENARIOS["synthetic"], axes=("kernel-twin",))
        assert list(signatures) == ["kernel-twin"]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axes"):
            run_axes(SCENARIOS["synthetic"], axes=("chaos",))

    def test_oracle_owns_the_switches(self):
        # feed/telemetry in params are stripped, not honoured.
        params = dict(SCENARIOS["synthetic"], feed="records",
                      telemetry="recorder")
        signatures = run_axes(params, axes=("kernel-twin",))
        assert "kernel-twin" in signatures


class TestMismatch:
    def test_mismatch_names_axis_and_first_difference(self):
        from repro.verify.differential import _compare

        a = run_scenario(**SCENARIOS["synthetic"])
        b = dict(a, completed=a["completed"] + 1)
        with pytest.raises(DifferentialMismatch) as exc:
            _compare("kernel-twin", {"seed": 3}, a, b, include_telemetry=False)
        assert exc.value.axis == "kernel-twin"
        assert "'completed'" in exc.value.detail
        assert "seed" in str(exc.value)


class TestParallelAxis:
    def test_serial_vs_pooled_agree(self):
        params = [SCENARIOS["synthetic"], SCENARIOS["fault-injected"]]
        signatures = check_parallel(params, workers=2)
        assert len(signatures) == 2

    def test_empty_batch(self):
        assert check_parallel([]) == []


class TestMonitorAxis:
    def test_monitored_campaign_bit_identical(self):
        from repro.verify import check_monitor

        # Same seed, same signature: the axis itself is deterministic.
        assert check_monitor(seed=5) == check_monitor(seed=5)

    def test_run_axes_includes_monitor(self):
        from repro.verify.differential import run_axes

        signatures = run_axes(SCENARIOS["synthetic"], axes=("monitor",))
        assert set(signatures) == {"monitor"}


def test_axes_constant_covers_all_six():
    assert AXES == (
        "kernel-twin", "kernel-backend", "feed", "telemetry", "parallel",
        "monitor",
    )
