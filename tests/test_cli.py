"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestGenerate:
    def test_list_catalog(self, capsys):
        assert main(["generate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "MSRsrc11" in out
        assert "HP Cello" in out

    def test_generate_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        code = main([
            "generate", "--name", "MSRprn1", "--duration", "300",
            "--output", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        from repro.traces import read_csv_trace

        trace = read_csv_trace(out_path)
        assert len(trace) > 10

    def test_generate_requires_name_and_output(self):
        with pytest.raises(SystemExit):
            main(["generate"])


class TestAnalyze:
    def test_analyze_synthetic(self, capsys):
        code = main([
            "analyze", "--synthetic", "MSRprn1", "--duration", "1800",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "idle:" in out
        assert "heavy-tailed" in out or "memoryless" in out

    def test_analyze_csv_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "t.csv"
        main([
            "generate", "--name", "MSRprn1", "--duration", "600",
            "--output", str(out_path),
        ])
        capsys.readouterr()
        assert main(["analyze", "--trace", str(out_path)]) == 0
        assert "requests:" in capsys.readouterr().out

    def test_source_required(self):
        with pytest.raises(SystemExit):
            main(["analyze"])

    def test_sources_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "analyze", "--trace", "x.csv", "--synthetic", "MSRprn1",
            ])


class TestOptimize:
    def test_optimize_synthetic(self, capsys):
        code = main([
            "optimize", "--synthetic", "MSRusr2", "--duration", "1800",
            "--goals-ms", "2.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2.00ms" in out
        assert "CFQ-like baseline" in out

    def test_unknown_drive_rejected(self):
        with pytest.raises(SystemExit, match="unknown drive"):
            main([
                "optimize", "--synthetic", "MSRusr2", "--drive", "flopotron",
            ])

    def test_grid_method_matches_search(self, capsys):
        argv = [
            "optimize", "--synthetic", "MSRusr2", "--duration", "900",
            "--goals-ms", "2.0",
        ]
        assert main(argv) == 0
        search_out = capsys.readouterr().out
        assert main(argv + ["--method", "grid"]) == 0
        grid_out = capsys.readouterr().out
        assert search_out == grid_out


class TestCorpus:
    @pytest.fixture()
    def corpus_dir(self, tmp_path):
        path = tmp_path / "corpus"
        assert main([
            "corpus", "build", "--out", str(path),
            "--names", "MSRusr2", "--duration", "600",
            "--chunk-requests", "1024",
        ]) == 0
        return path

    def test_build_and_list(self, corpus_dir, capsys):
        capsys.readouterr()
        assert main(["corpus", "list", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "MSRusr2" in out

    def test_verify_detects_corruption(self, corpus_dir, capsys):
        assert main(["corpus", "verify", str(corpus_dir)]) == 0
        chunk = corpus_dir / "MSRusr2" / "chunk-000000.bin"
        blob = bytearray(chunk.read_bytes())
        blob[10] ^= 0xFF
        chunk.write_bytes(bytes(blob))
        assert main(["corpus", "verify", str(corpus_dir)]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_not_a_corpus_exits_2(self, tmp_path, capsys):
        assert main(["corpus", "list", str(tmp_path)]) == 2
        assert "not a trace corpus" in capsys.readouterr().err

    def test_optimize_corpus_json(self, corpus_dir, capsys):
        import json

        assert main([
            "optimize", "--corpus", str(corpus_dir),
            "--goals-ms", "2.0", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        row = payload["entries"]["MSRusr2"]["goals"]["2"]
        assert row["throughput_mbps"] > 0
        assert row["achieved_slowdown_ms"] <= 2.0

    def test_optimize_unknown_entry_exits_2(self, corpus_dir, capsys):
        assert main([
            "optimize", "--corpus", str(corpus_dir),
            "--entries", "nosuch", "--goals-ms", "2.0",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown corpus entry" in err and "MSRusr2" in err


class TestThroughput:
    def test_sequential(self, capsys):
        assert main(["throughput", "--horizon", "3"]) == 0
        assert "MB/s" in capsys.readouterr().out

    def test_staggered_with_regions(self, capsys):
        assert main([
            "throughput", "--algorithm", "staggered", "--regions", "64",
            "--horizon", "3",
        ]) == 0
        assert "staggered" in capsys.readouterr().out


class TestMlet:
    def test_mlet_table(self, capsys):
        code = main([
            "mlet", "--sectors", "100000", "--regions", "16", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "staggered-64" in out


class TestVerify:
    def test_small_fuzz_passes(self, capsys):
        code = main([
            "verify", "--seed", "7", "--configs", "3",
            "--axes", "kernel-twin",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "verify fuzz [OK]: 3/3 configs passed" in out

    def test_self_test_alone(self, capsys):
        code = main(["verify", "--self-test", "--configs", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "self-test: 6/6 planted bugs caught" in out
        assert "cursor-drift" in out

    def test_bad_axis_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "--axes", "chaos"])


class TestKernelFlag:
    def test_throughput_identical_under_both_kernels(self, capsys):
        assert main(["throughput", "--horizon", "1", "--kernel", "reference"]) == 0
        reference = capsys.readouterr().out
        assert main(["throughput", "--horizon", "1", "--kernel", "vector"]) == 0
        assert capsys.readouterr().out == reference

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["throughput", "--kernel", "turbo"])

    def test_trace_vector_fails_fast_with_exit_2(self, tmp_path, capsys):
        code = main([
            "trace", "--kernel", "vector", "--horizon", "0.1",
            "--out", str(tmp_path / "t.json"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "vector" in err
        assert "--kernel reference" in err
        assert not (tmp_path / "t.json").exists()  # no silent fallback

    def test_verify_kernel_backend_axis(self, capsys):
        code = main([
            "verify", "--seed", "7", "--configs", "2",
            "--axes", "kernel-backend",
        ])
        assert code == 0
        assert "2/2 configs passed" in capsys.readouterr().out

    def test_verify_forced_kernel(self, capsys):
        code = main([
            "verify", "--seed", "7", "--configs", "2",
            "--axes", "kernel-twin", "--kernel", "vector",
        ])
        assert code == 0
        assert "2/2 configs passed" in capsys.readouterr().out


class TestBench:
    def test_bench_finds_run_perf_from_repo(self, monkeypatch, tmp_path):
        # Point the walk-up at an empty directory: no benchmarks/ tree.
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="could not find"):
            main(["bench"])


class TestFleetMonitor:
    """PR 8: live observability flags on the fleet command."""

    _BASE = [
        "fleet", "--groups", "24", "--disks", "4", "--shards", "3",
        "--mission-years", "3", "--policy", "sequential@168",
        "--mttf-hours", "2e4", "--lse-rate", "2e-4",
    ]

    def test_monitor_writes_all_surfaces(self, tmp_path, capsys):
        obs = tmp_path / "obs"
        code = main(self._BASE + [
            "--monitor-dir", str(obs), "--status-interval", "0",
            "--prom-out", str(tmp_path / "m.prom"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "monitor: utilization" in out
        for name in ("status.json", "events.jsonl", "trace.json",
                     "summary.json"):
            assert (obs / name).exists()
        assert "repro_" in (tmp_path / "m.prom").read_text()

    def test_monitor_is_passive_on_results(self, tmp_path, capsys):
        import json

        bare_json = tmp_path / "bare.json"
        mon_json = tmp_path / "mon.json"
        assert main(self._BASE + ["--json", str(bare_json)]) == 0
        capsys.readouterr()
        assert main(self._BASE + [
            "--json", str(mon_json),
            "--monitor-dir", str(tmp_path / "obs"), "--status-interval", "0",
        ]) == 0
        assert json.loads(bare_json.read_text()) == \
            json.loads(mon_json.read_text())

    def test_trace_out_requires_monitor(self, tmp_path):
        with pytest.raises(SystemExit, match="--monitor"):
            main(self._BASE + ["--trace-out", str(tmp_path / "t.json")])

    def test_report_roundtrip(self, tmp_path, capsys):
        obs = tmp_path / "obs"
        assert main(self._BASE + [
            "--monitor-dir", str(obs), "--status-interval", "0",
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(obs)]) == 0
        assert "report.html" in capsys.readouterr().out
        assert "</html>" in (obs / "report.html").read_text()

    def test_report_empty_dir_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="monitor"):
            main(["report", str(tmp_path)])


class TestTraceCounters:
    def test_trace_table_surfaces_drops_and_evictions(self, tmp_path, capsys):
        code = main([
            "trace", "--horizon", "0.5",
            "--out", str(tmp_path / "trace.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "device.log_dropped" in out
        assert "drive.cache_evictions" in out
