"""Tests for the fault-tolerant supervised runner (PR 7).

The contract under test: supervision changes *when* results arrive,
never *what* they are.  Every failure mode — a SIGKILLed worker, a
task wedged past its deadline, a task that raises on every attempt —
must be detected, retried per the policy, and finally reported as a
structured :class:`TaskOutcome` instead of an exception, so a batch
always completes and callers can salvage the survivors.
"""

import os
import signal
import time

import pytest

from repro.parallel import RetryPolicy, SupervisedRunner, TaskOutcome
from repro.parallel.supervise import LEGACY_RETRY


def _square(x):
    return x * x


def _kill_once(sentinel, value):
    """SIGKILLs its own worker on the first attempt only."""
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return value + 100


def _always_kill(value):
    os.kill(os.getpid(), signal.SIGKILL)


def _always_raise(value):
    raise ValueError(f"task rejects {value}")


def _hang(value):
    time.sleep(600)
    return value


def _hang_once(sentinel, value):
    """Sleeps forever on the first attempt, returns on the second."""
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        time.sleep(600)
    return value * 7


#: Fast deterministic policy for tests: retries are immediate.
_FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_max=0.0, jitter=0.0)


class TestRetryPolicy:
    def test_delays_are_deterministic_and_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=1.0, backoff_multiplier=2.0,
            backoff_max=30.0, jitter=0.25, seed=11,
        )
        delays = [policy.delay(attempt, task_index=3) for attempt in (1, 2, 3)]
        assert delays == [
            policy.delay(attempt, task_index=3) for attempt in (1, 2, 3)
        ]
        # Each delay lies in [base * (1 - jitter), base] for its attempt.
        for attempt, delay in zip((1, 2, 3), delays):
            base = 1.0 * 2.0 ** (attempt - 1)
            assert base * 0.75 <= delay <= base

    def test_jitter_differs_per_task_but_not_per_run(self):
        policy = RetryPolicy(jitter=0.5, seed=2)
        samples = {policy.delay(1, task_index=i) for i in range(16)}
        assert len(samples) > 1  # tasks never retry in lockstep

    def test_backoff_cap(self):
        policy = RetryPolicy(
            backoff_base=10.0, backoff_multiplier=10.0, backoff_max=15.0,
            jitter=0.0,
        )
        assert policy.delay(3) == 15.0

    def test_legacy_policy_is_one_immediate_retry(self):
        assert LEGACY_RETRY.max_attempts == 2
        assert LEGACY_RETRY.delay(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestSupervisedRunner:
    def test_results_in_input_order_first_try(self):
        runner = SupervisedRunner(workers=3, retry=_FAST, heartbeat_interval=0.2)
        outcomes = runner.map(_square, [{"x": i} for i in range(6)])
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
        assert all(o.ok and o.attempts == 1 and o.error is None for o in outcomes)

    def test_sigkilled_worker_is_detected_and_retried(self, tmp_path):
        runner = SupervisedRunner(workers=2, retry=_FAST, heartbeat_interval=0.2)
        sentinel = str(tmp_path / "killed-once")
        (outcome,) = runner.map(_kill_once, [{"sentinel": sentinel, "value": 5}])
        assert outcome.ok and outcome.value == 105
        assert outcome.attempts == 2
        assert outcome.worker_deaths == 1

    def test_reproducible_death_degrades_gracefully(self):
        runner = SupervisedRunner(workers=2, retry=_FAST, heartbeat_interval=0.2)
        outcomes = runner.map(
            _always_kill if False else _square, [{"x": 1}]
        )  # sanity: runner reusable
        assert outcomes[0].ok
        (outcome,) = runner.map(_always_kill, [{"value": 1}])
        assert not outcome.ok
        assert outcome.attempts == _FAST.max_attempts
        assert outcome.worker_deaths == _FAST.max_attempts
        assert "died" in outcome.error

    def test_hung_worker_hits_deadline_and_is_retried(self, tmp_path):
        runner = SupervisedRunner(
            workers=2, task_timeout=0.5, heartbeat_interval=0.1, retry=_FAST,
        )
        sentinel = str(tmp_path / "hung-once")
        (outcome,) = runner.map(_hang_once, [{"sentinel": sentinel, "value": 3}])
        assert outcome.ok and outcome.value == 21
        assert outcome.timeouts == 1
        assert outcome.attempts == 2

    def test_sleep_forever_task_fails_with_bounded_wall_clock(self):
        runner = SupervisedRunner(
            workers=1, task_timeout=0.4, heartbeat_interval=0.1,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
        )
        start = time.monotonic()
        (outcome,) = runner.map(_hang, [{"value": 9}])
        elapsed = time.monotonic() - start
        assert not outcome.ok
        assert outcome.timeouts == 2
        assert "deadline" in outcome.error
        assert elapsed < 10.0  # 2 attempts x 0.4s deadline, plus slack

    def test_exceptions_are_reported_not_raised(self):
        runner = SupervisedRunner(workers=2, retry=_FAST, heartbeat_interval=0.2)
        outcomes = runner.map(
            _always_raise, [{"value": 1}, {"value": 2}]
        )
        assert all(not o.ok for o in outcomes)
        assert all(o.attempts == _FAST.max_attempts for o in outcomes)
        assert "task rejects 1" in outcomes[0].error
        assert "task rejects 2" in outcomes[1].error

    def test_batch_survives_mixed_failures(self, tmp_path):
        runner = SupervisedRunner(workers=2, retry=_FAST, heartbeat_interval=0.2)
        sentinel = str(tmp_path / "mixed")
        # Interleave healthy tasks with a transient killer and a
        # permanent failure; the healthy results must be untouched.
        outcomes_sq = runner.map(_square, [{"x": 2}, {"x": 3}])
        (killed,) = runner.map(_kill_once, [{"sentinel": sentinel, "value": 1}])
        (raised,) = runner.map(_always_raise, [{"value": 0}])
        assert [o.value for o in outcomes_sq] == [4, 9]
        assert killed.ok and raised.ok is False

    def test_on_result_fires_once_per_task(self):
        runner = SupervisedRunner(workers=2, retry=_FAST, heartbeat_interval=0.2)
        seen = []
        outcomes = runner.map(
            _square, [{"x": i} for i in range(4)],
            on_result=lambda outcome: seen.append(outcome.index),
        )
        assert sorted(seen) == [0, 1, 2, 3]  # completion order varies
        assert all(isinstance(o, TaskOutcome) for o in outcomes)

    def test_telemetry_counters(self, tmp_path):
        from repro.telemetry import Recorder

        recorder = Recorder(wall_time=False)
        runner = SupervisedRunner(
            workers=2, retry=_FAST, heartbeat_interval=0.2, telemetry=recorder,
        )
        sentinel = str(tmp_path / "counted")
        runner.map(_kill_once, [{"sentinel": sentinel, "value": 1}])
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["supervise.tasks"] == 1
        assert counters["supervise.attempts"] == 2
        assert counters["supervise.worker_deaths"] == 1
        assert counters["supervise.retries"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisedRunner(task_timeout=0.0)
        with pytest.raises(ValueError):
            SupervisedRunner(straggler_factor=1.0)


def _probed_task(steps, pause):
    """Advances the worker progress probe slowly enough to be sampled."""
    from repro.obs.worker import PROBE

    PROBE.reset(steps)
    for _ in range(steps):
        time.sleep(pause)
        PROBE.advance()
    return steps


class TestProgressProbe:
    """PR 8: heartbeats ship worker progress + RSS onto TaskOutcome."""

    def test_outcome_carries_progress_and_rss(self):
        runner = SupervisedRunner(workers=1, heartbeat_interval=0.05)
        (outcome,) = runner.map(_probed_task, [{"steps": 8, "pause": 0.05}])
        assert outcome.ok
        assert outcome.last_progress is not None
        assert outcome.last_progress["total"] == 8
        assert outcome.last_progress["done"] > 0
        assert outcome.last_progress_time is not None
        assert outcome.peak_rss_kb and outcome.peak_rss_kb > 0

    def test_fast_task_without_heartbeat_has_none(self):
        # A task finishing inside one heartbeat never ships a payload;
        # the fields stay None rather than inventing a zero sample.
        runner = SupervisedRunner(workers=1, heartbeat_interval=30.0)
        (outcome,) = runner.map(_square, [{"x": 5}])
        assert outcome.ok and outcome.value == 25
        assert outcome.last_progress is None
        assert outcome.last_progress_time is None

    def test_on_event_stream(self):
        events = []
        runner = SupervisedRunner(workers=1, heartbeat_interval=0.05)
        runner.map(
            _probed_task, [{"steps": 6, "pause": 0.05}],
            on_event=lambda kind, index, info: events.append((kind, index)),
        )
        kinds = [kind for kind, _ in events]
        assert kinds[0] == "attempt_started"
        assert kinds[-1] == "attempt_ok"
        assert "heartbeat" in kinds
        assert all(index == 0 for _, index in events)

    def test_on_event_callback_failure_is_swallowed(self):
        def boom(kind, index, info):
            raise RuntimeError("observer died")

        runner = SupervisedRunner(workers=1, heartbeat_interval=0.2)
        (outcome,) = runner.map(_square, [{"x": 3}], on_event=boom)
        assert outcome.ok and outcome.value == 9

    def test_on_event_reports_failures(self, tmp_path):
        events = []
        runner = SupervisedRunner(workers=1, retry=_FAST, heartbeat_interval=0.2)
        sentinel = str(tmp_path / "probe-kill")
        (outcome,) = runner.map(
            _kill_once, [{"sentinel": sentinel, "value": 1}],
            on_event=lambda kind, index, info: events.append((kind, info)),
        )
        assert outcome.ok
        failed = [info for kind, info in events if kind == "attempt_failed"]
        assert len(failed) == 1
        assert failed[0]["kind"] == "death"
        assert failed[0]["attempt"] == 1
        assert failed[0]["duration"] >= 0.0
