"""Tests for deterministic named random streams (repro.sim.rng)."""

import numpy as np

from repro.sim import RandomStreams


def test_same_name_returns_same_stream_object():
    streams = RandomStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_same_seed_same_name_reproduces_draws():
    a = RandomStreams(seed=42).get("workload").random(10)
    b = RandomStreams(seed=42).get("workload").random(10)
    assert np.array_equal(a, b)


def test_different_names_give_independent_streams():
    streams = RandomStreams(seed=42)
    a = streams.get("alpha").random(100)
    b = streams.get("beta").random(100)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").random(10)
    b = RandomStreams(seed=2).get("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_is_order_independent():
    """Requesting streams in a different order must not change draws."""
    s1 = RandomStreams(seed=9)
    s1.get("first")
    draws_second = s1.get("second").random(5)

    s2 = RandomStreams(seed=9)
    draws_second_alone = s2.get("second").random(5)
    assert np.array_equal(draws_second, draws_second_alone)


def test_spawn_derives_reproducible_family():
    a = RandomStreams(seed=3).spawn("child").get("x").random(4)
    b = RandomStreams(seed=3).spawn("child").get("x").random(4)
    assert np.array_equal(a, b)


def test_spawn_differs_from_parent():
    parent = RandomStreams(seed=3)
    child = parent.spawn("child")
    assert not np.array_equal(parent.get("x").random(4), child.get("x").random(4))
