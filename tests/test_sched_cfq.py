"""Tests for the CFQ scheduler model (repro.sched.cfq)."""

import pytest

from repro.disk.commands import DiskCommand
from repro.sched import CFQScheduler, IORequest, PriorityClass


def req(lbn=0, priority=PriorityClass.BE, source="fg", barrier=False, now=0.0):
    request = IORequest(
        DiskCommand.read(lbn, 8),
        priority=priority,
        source=source,
        soft_barrier=barrier,
    )
    request.stamp_submit(now)
    return request


def make(idle_gate=0.010, slice_sync=0.1, slice_idle=0.008):
    return CFQScheduler(
        idle_gate=idle_gate, slice_sync=slice_sync, slice_idle=slice_idle
    )


def test_empty_scheduler_sleeps():
    cfq = make()
    assert cfq.select(0.0) == (None, None)
    assert len(cfq) == 0


def test_rt_beats_be():
    cfq = make()
    be = req(priority=PriorityClass.BE)
    rt = req(priority=PriorityClass.RT)
    cfq.add(be, 0.0)
    cfq.add(rt, 0.0)
    chosen, _ = cfq.select(0.0)
    assert chosen is rt


def test_be_beats_idle():
    cfq = make()
    idle = req(priority=PriorityClass.IDLE, source="scrub")
    be = req(priority=PriorityClass.BE)
    cfq.add(idle, 0.0)
    cfq.add(be, 0.0)
    chosen, _ = cfq.select(0.0)
    assert chosen is be


def test_idle_class_gated_until_quiescence():
    cfq = make(idle_gate=0.010)
    fg = req(priority=PriorityClass.BE)
    cfq.add(fg, 0.0)
    chosen, _ = cfq.select(0.0)
    cfq.on_dispatch(chosen, 0.0)
    cfq.on_complete(chosen, 0.005)

    scrub = req(priority=PriorityClass.IDLE, source="scrub", now=0.006)
    cfq.add(scrub, 0.006)
    # Foreground completed at 5 ms; the gate opens at 15 ms.
    chosen, recheck = cfq.select(0.006)
    assert chosen is None
    assert recheck == pytest.approx(0.015)
    chosen, _ = cfq.select(0.015)
    assert chosen is scrub


def test_idle_gate_open_when_no_foreground_history():
    cfq = make(idle_gate=0.010)
    scrub = req(priority=PriorityClass.IDLE, source="scrub")
    cfq.add(scrub, 0.0)
    chosen, _ = cfq.select(0.0)
    assert chosen is scrub


def test_back_to_back_idle_requests_flow_once_gate_open():
    cfq = make(idle_gate=0.010)
    s1 = req(priority=PriorityClass.IDLE, source="scrub")
    s2 = req(lbn=8, priority=PriorityClass.IDLE, source="scrub")
    cfq.add(s1, 0.0)
    cfq.add(s2, 0.0)
    first, _ = cfq.select(0.0)
    cfq.on_dispatch(first, 0.0)
    cfq.on_complete(first, 0.004)
    second, _ = cfq.select(0.004)
    assert second is s2  # completing an idle request must not re-arm the gate


def test_be_slice_owner_keeps_disk():
    cfq = make(slice_sync=0.1)
    a1 = req(lbn=0, source="a")
    b1 = req(lbn=1000, source="b")
    cfq.add(a1, 0.0)
    cfq.add(b1, 0.0)
    first, _ = cfq.select(0.0)
    cfq.on_dispatch(first, 0.0)
    cfq.on_complete(first, 0.004)
    # Owner "a" submits again within its slice: it goes first even though
    # "b" has been waiting longer.
    a2 = req(lbn=8, source="a", now=0.004)
    cfq.add(a2, 0.004)
    second, _ = cfq.select(0.004)
    assert second is a2


def test_be_slice_anticipation_waits_for_owner():
    cfq = make(slice_sync=0.1, slice_idle=0.008)
    a1 = req(lbn=0, source="a")
    cfq.add(a1, 0.0)
    first, _ = cfq.select(0.0)
    cfq.on_dispatch(first, 0.0)
    cfq.on_complete(first, 0.004)
    b1 = req(lbn=1000, source="b", now=0.004)
    cfq.add(b1, 0.004)
    # Owner queue is empty but anticipated until 4 ms + 8 ms = 12 ms.
    chosen, recheck = cfq.select(0.0041)
    assert chosen is None
    assert recheck == pytest.approx(0.012)
    chosen, _ = cfq.select(0.012)
    assert chosen is b1


def test_be_slice_expires_and_rotates():
    cfq = make(slice_sync=0.01)
    a1 = req(lbn=0, source="a")
    a2 = req(lbn=8, source="a")
    b1 = req(lbn=1000, source="b")
    cfq.add(a1, 0.0)
    cfq.add(a2, 0.0)
    cfq.add(b1, 0.0)
    first, _ = cfq.select(0.0)
    assert first.source == "a"
    # Past the slice end, the other source takes over despite "a" backlog.
    second, _ = cfq.select(0.02)
    assert second is b1


def test_soft_barrier_ignores_priority():
    cfq = make()
    barrier = req(priority=PriorityClass.IDLE, source="scrub", barrier=True)
    cfq.add(barrier, 0.0)
    fg = req(priority=PriorityClass.RT, now=1.0)
    cfq.add(fg, 1.0)
    # The barrier was submitted first: even an RT request cannot overtake.
    chosen, _ = cfq.select(1.0)
    assert chosen is barrier
    chosen, _ = cfq.select(1.0)
    assert chosen is fg


def test_requests_before_barrier_drain_first():
    cfq = make()
    fg = req(priority=PriorityClass.BE)
    cfq.add(fg, 0.0)
    barrier = req(source="scrub", barrier=True, now=0.001)
    cfq.add(barrier, 0.001)
    first, _ = cfq.select(0.002)
    assert first is fg
    second, _ = cfq.select(0.002)
    assert second is barrier


def test_barriers_fifo_among_themselves():
    cfq = make()
    b1 = req(lbn=500, barrier=True)
    b2 = req(lbn=100, barrier=True, now=0.001)
    cfq.add(b1, 0.0)
    cfq.add(b2, 0.001)
    assert cfq.select(0.002)[0] is b1
    assert cfq.select(0.002)[0] is b2


def test_barrier_resets_idle_gate():
    cfq = make(idle_gate=0.010)
    barrier = req(barrier=True)
    cfq.add(barrier, 0.0)
    dispatched, _ = cfq.select(0.0)
    cfq.on_dispatch(dispatched, 0.0)
    cfq.on_complete(dispatched, 0.004)
    scrub = req(priority=PriorityClass.IDLE, source="scrub", now=0.005)
    cfq.add(scrub, 0.005)
    chosen, recheck = cfq.select(0.005)
    assert chosen is None
    assert recheck == pytest.approx(0.014)


def test_len_counts_all_queues():
    cfq = make()
    cfq.add(req(priority=PriorityClass.RT), 0.0)
    cfq.add(req(priority=PriorityClass.BE), 0.0)
    cfq.add(req(priority=PriorityClass.IDLE), 0.0)
    cfq.add(req(barrier=True), 0.0)
    assert len(cfq) == 4


def test_invalid_parameters():
    with pytest.raises(ValueError):
        CFQScheduler(idle_gate=-1)
    with pytest.raises(ValueError):
        CFQScheduler(slice_sync=0)
