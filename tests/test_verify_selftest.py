"""Checker-of-the-checker: every planted bug must be caught.

These are the ISSUE's mutation acceptance criteria: planting any
single seeded bug (skip a region, drop a completion, double-remap,
backdate a clock, drift the replay cursor) must make the invariant
checker or the differential oracle fail with an actionable report —
and unplanting it must leave the stack clean.
"""

import pytest

from repro.verify import MUTATIONS, run_selftest
from repro.verify.selftest import SelfTestResult


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_is_caught(name):
    (result,) = run_selftest([name])
    assert isinstance(result, SelfTestResult)
    assert result.caught, (
        f"planted bug {name!r} ({MUTATIONS[name].description}) went "
        f"undetected: {result.detail}"
    )
    assert result.clean_after, (
        f"mutation {name!r} leaked its patch: {result.detail}"
    )
    # The report is actionable: it names the violated invariant or the
    # diverged axis, not just "assertion failed".
    assert "invariant" in result.detail or "differential" in result.detail


def test_registry_covers_both_pillars():
    from repro.verify import DifferentialMismatch, InvariantViolation

    expectations = {exc for m in MUTATIONS.values() for exc in m.expect}
    assert InvariantViolation in expectations
    assert DifferentialMismatch in expectations
    assert len(MUTATIONS) >= 5
