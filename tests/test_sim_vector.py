"""Tests for the vector batch-advance kernel (repro.sim.vector)."""

import numpy as np
import pytest

from repro.sim import (
    KERNELS,
    ReusableTimeout,
    Simulation,
    UnsupportedKernelFeature,
    VectorSimulation,
    make_simulation,
)
from repro.telemetry.sink import TelemetrySink


class CountingSink(TelemetrySink):
    enabled = True

    def __init__(self):
        self.events = 0
        self.runs = 0
        self.final_now = None

    def engine_run(self, events, now, wall_seconds):
        self.events += events
        self.runs += 1
        self.final_now = now


class TestMakeSimulation:
    def test_dispatch(self):
        assert type(make_simulation("reference")) is Simulation
        assert type(make_simulation("vector")) is VectorSimulation

    def test_kernel_attribute(self):
        assert Simulation.kernel == "reference"
        assert VectorSimulation.kernel == "vector"
        assert KERNELS == ("reference", "vector")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel must be one of"):
            make_simulation("turbo")

    def test_start_and_telemetry_forwarded(self):
        sink = CountingSink()
        sim = make_simulation("vector", start=5.0, telemetry=sink)
        assert sim.now == 5.0
        assert sim.telemetry is sink


def _program(sim, log):
    """A process exercising timeouts, values and nested spawns."""

    def child(sim):
        yield sim.timeout(0.5)
        log.append(("child", sim.now))

    def main(sim):
        yield sim.timeout(1.0)
        log.append(("a", sim.now))
        sim.process(child(sim))
        value = yield sim.timeout(0.25, value="payload")
        log.append((value, sim.now))
        yield sim.timeout(2.0)
        log.append(("b", sim.now))

    return main


class TestParity:
    def test_process_program_parity(self):
        outcomes = {}
        for kernel in KERNELS:
            sim = make_simulation(kernel)
            log = []
            sim.process(_program(sim, log)(sim))
            sim.run()
            outcomes[kernel] = (log, sim.now, sim._seq)
        assert outcomes["reference"] == outcomes["vector"]

    def test_sink_event_count_parity(self):
        counts = {}
        for kernel in KERNELS:
            sink = CountingSink()
            sim = make_simulation(kernel, telemetry=sink)
            log = []
            sim.process(_program(sim, log)(sim))
            sim.run()
            counts[kernel] = (sink.events, sink.final_now)
        assert counts["reference"] == counts["vector"]

    def test_batched_timers_count_like_individual_ones(self):
        individual = CountingSink()
        sim = make_simulation("vector", telemetry=individual)
        for i in range(40):
            sim.timeout(float(i % 7) + 0.5)
        sim.run()

        batched = CountingSink()
        sim = make_simulation("vector", telemetry=batched)
        sim.schedule_timers((np.arange(40) % 7) + 0.5)
        sim.run()

        assert individual.events == batched.events
        assert individual.final_now == batched.final_now


class TestScheduleTimers:
    def test_consumes_one_seq_per_timer(self):
        sim = make_simulation("vector")
        before = sim._seq
        assert sim.schedule_timers([1.0, 2.0, 3.0]) == 3
        assert sim._seq == before + 3

    def test_empty_batch_is_a_noop(self):
        sim = make_simulation("vector")
        before = sim._seq
        assert sim.schedule_timers([]) == 0
        assert sim._seq == before

    def test_negative_delay_rejected(self):
        sim = make_simulation("vector")
        with pytest.raises(ValueError, match="negative timeout delay"):
            sim.schedule_timers([1.0, -0.5])

    def test_non_1d_rejected(self):
        sim = make_simulation("vector")
        with pytest.raises(ValueError, match="must be 1-D"):
            sim.schedule_timers([[1.0, 2.0]])

    def test_timers_interleave_with_heap_events(self):
        sim = make_simulation("vector")
        log = []

        def proc(sim):
            yield sim.timeout(1.5)
            log.append(sim.now)
            yield sim.timeout(2.0)
            log.append(sim.now)

        sim.process(proc(sim))
        sim.schedule_timers([1.0, 2.0, 4.0])
        sim.run()
        # The process resumed between the pure timers, at its own times.
        assert log == [1.5, 3.5]
        assert sim.now == 4.0


class TestCallAt:
    def test_fires_in_time_and_seq_order(self):
        sim = make_simulation("vector")
        fired = []
        sim.call_at(2.0, lambda: fired.append("later"))
        sim.call_at(1.0, lambda: fired.append("sooner"))
        sim.call_at(1.0, lambda: fired.append("sooner-2"))
        sim.run()
        assert fired == ["sooner", "sooner-2", "later"]
        assert sim.now == 2.0

    def test_pure_entry_advances_clock(self):
        sim = make_simulation("vector")
        sim.call_at(3.0)
        sim.run()
        assert sim.now == 3.0

    def test_past_time_rejected(self):
        sim = make_simulation("vector", start=5.0)
        with pytest.raises(ValueError, match="lies in the past"):
            sim.call_at(4.0)


class TestEngineApi:
    def test_peek_spans_all_stores(self):
        sim = make_simulation("vector")
        assert sim.peek() == float("inf")
        sim.timeout(3.0)  # heap
        assert sim.peek() == 3.0
        sim.schedule_timers([2.0])  # backbone
        assert sim.peek() == 2.0
        sim.call_at(1.0)  # incoming buffer
        assert sim.peek() == 1.0

    def test_step_refused(self):
        sim = make_simulation("vector")
        sim.timeout(1.0)
        with pytest.raises(UnsupportedKernelFeature, match="batches"):
            sim.step()

    def test_run_until_event_returns_value(self):
        sim = make_simulation("vector")

        def proc(sim):
            yield sim.timeout(1.0)
            return "done"

        process = sim.process(proc(sim))
        assert sim.run(until=process) == "done"

    def test_run_until_number_stops_at_deadline(self):
        sim = make_simulation("vector")
        sim.schedule_timers(np.full(10, 5.0))
        sim.run(until=2.5)
        assert sim.now == 2.5
        sim.run()
        assert sim.now == 5.0

    def test_run_until_past_rejected(self):
        sim = make_simulation("vector", start=2.0)
        with pytest.raises(ValueError, match="lies in the past"):
            sim.run(until=1.0)

    def test_run_out_of_events_with_unfired_until(self):
        sim = make_simulation("vector")

        def forever(sim):
            yield sim.event()  # never triggered

        process = sim.process(forever(sim))
        with pytest.raises(RuntimeError, match="ran out of events"):
            sim.run(until=process)


class TestReusableTimeout:
    def test_arm_matches_fresh_timeout(self):
        fresh = make_simulation("reference")
        log_fresh = []

        def sleeper_fresh(sim):
            for _ in range(5):
                yield sim.timeout(1.25)
                log_fresh.append(sim.now)

        fresh.process(sleeper_fresh(fresh))
        fresh.run()

        pooled = make_simulation("reference")
        log_pooled = []

        def sleeper_pooled(sim):
            timer = ReusableTimeout(sim)
            for _ in range(5):
                yield timer.arm(1.25)
                log_pooled.append(sim.now)

        pooled.process(sleeper_pooled(pooled))
        pooled.run()

        assert log_fresh == log_pooled
        assert fresh._seq == pooled._seq

    def test_arm_carries_value(self):
        sim = make_simulation("reference")
        seen = []

        def proc(sim):
            timer = ReusableTimeout(sim)
            seen.append((yield timer.arm(1.0, value="tick")))
            seen.append((yield timer.arm(1.0)))

        sim.process(proc(sim))
        sim.run()
        assert seen == ["tick", None]

    def test_born_processed(self):
        sim = make_simulation("reference")
        timer = ReusableTimeout(sim)
        assert timer.processed

    def test_negative_delay_rejected(self):
        sim = make_simulation("reference")
        timer = ReusableTimeout(sim)
        with pytest.raises(ValueError):
            timer.arm(-1.0)


class TestUntilMarkerPool:
    def test_marker_reused_across_runs(self):
        sim = make_simulation("reference")
        sim.timeout(10.0)
        sim.run(until=1.0)
        first = sim._marker
        sim.run(until=2.0)
        assert sim._marker is first

    def test_unfired_marker_not_reused(self):
        from repro.sim import StopSimulation

        sim = make_simulation("reference")

        def stopper(sim):
            yield sim.timeout(1.0)
            raise StopSimulation(None)

        # The aborted run leaves its deadline marker un-fired in the
        # heap; reusing that object would fire _PROCESSED as a callback.
        sim.process(stopper(sim))
        sim.run(until=5.0)
        assert sim.now == 1.0
        stale = sim._marker
        sim.run(until=6.0)
        assert sim._marker is not stale
