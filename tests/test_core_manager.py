"""Tests for the system-wide scrub manager (repro.core.manager)."""

import pytest

from repro.core import SequentialScrub, StaggeredScrub
from repro.core.manager import ScrubManager
from repro.disk import Drive, hitachi_ultrastar_15k450
from repro.sched import BlockDevice, NoopScheduler
from repro.sim import Simulation


def tiny_device(sim):
    spec = hitachi_ultrastar_15k450().with_overrides(
        cylinders=30, outer_spt=64, inner_spt=64, num_zones=1, heads=2,
        average_seek=1e-3, full_stroke_seek=2e-3,
    )
    return BlockDevice(sim, Drive(spec, cache_enabled=False), NoopScheduler())


@pytest.fixture
def setup():
    sim = Simulation()
    manager = ScrubManager(sim)
    return sim, manager


class TestHotplug:
    def test_register_and_list(self, setup):
        sim, manager = setup
        manager.register("sda", tiny_device(sim))
        manager.register("sdb", tiny_device(sim))
        assert manager.devices == ["sda", "sdb"]

    def test_duplicate_registration_rejected(self, setup):
        sim, manager = setup
        manager.register("sda", tiny_device(sim))
        with pytest.raises(ValueError):
            manager.register("sda", tiny_device(sim))

    def test_unregister_stops_scrubber(self, setup):
        sim, manager = setup
        manager.register("sda", tiny_device(sim))
        scrubber = manager.activate("sda")
        sim.run(until=0.05)
        manager.unregister("sda")
        issued = scrubber.requests_issued
        sim.run(until=0.2)
        assert scrubber.requests_issued == issued
        assert manager.devices == []

    def test_unknown_device_rejected(self, setup):
        _, manager = setup
        with pytest.raises(KeyError):
            manager.activate("nope")
        with pytest.raises(KeyError):
            manager.unregister("nope")


class TestActivation:
    def test_dormant_until_activated(self, setup):
        sim, manager = setup
        device = tiny_device(sim)
        manager.register("sda", device)
        sim.run(until=0.2)
        assert device.log.count() == 0
        assert not manager.is_active("sda")

    def test_activate_scrubs(self, setup):
        sim, manager = setup
        manager.register("sda", tiny_device(sim))
        scrubber = manager.activate("sda")
        sim.run(until=0.5)
        assert scrubber.requests_issued > 0
        assert manager.is_active("sda")
        assert manager.total_bytes_scrubbed() == scrubber.bytes_scrubbed

    def test_double_activation_rejected(self, setup):
        sim, manager = setup
        manager.register("sda", tiny_device(sim))
        manager.activate("sda")
        with pytest.raises(RuntimeError):
            manager.activate("sda")

    def test_deactivate_then_reactivate(self, setup):
        sim, manager = setup
        manager.register("sda", tiny_device(sim))
        manager.activate("sda")
        sim.run(until=0.1)
        manager.deactivate("sda")
        sim.run(until=0.15)
        assert not manager.is_active("sda")
        manager.activate("sda", algorithm=StaggeredScrub(4))
        sim.run(until=0.3)
        assert manager.is_active("sda")

    def test_independent_devices(self, setup):
        sim, manager = setup
        manager.register("sda", tiny_device(sim))
        manager.register("sdb", tiny_device(sim))
        fast = manager.activate("sda")
        slow = manager.activate("sdb", delay=0.05)
        sim.run(until=1.0)
        assert fast.bytes_scrubbed > slow.bytes_scrubbed
        assert (
            manager.total_bytes_scrubbed()
            == fast.bytes_scrubbed + slow.bytes_scrubbed
        )

    def test_sources_are_per_device(self, setup):
        sim, manager = setup
        device = tiny_device(sim)
        manager.register("sda", device)
        manager.activate("sda")
        sim.run(until=0.1)
        assert device.log.count("scrubber:sda") > 0


class TestProgress:
    def test_progress_goes_to_one_and_wraps(self, setup):
        sim, manager = setup
        manager.register("sda", tiny_device(sim))
        scrubber = manager.activate("sda", request_bytes=128 * 1024)
        assert manager.progress("sda") == 0.0
        sim.run(until=0.3)
        first = manager.progress("sda")
        assert 0.0 <= first <= 1.0
        # Run long enough for at least one full pass.
        sim.run(until=6.0)
        assert scrubber.passes_completed >= 1
        assert 0.0 <= manager.progress("sda") <= 1.0

    def test_progress_without_scrubber_is_zero(self, setup):
        sim, manager = setup
        manager.register("sda", tiny_device(sim))
        assert manager.progress("sda") == 0.0
