"""Event-ordering regression tests for the reworked simulation kernel.

The PR-1 kernel fast paths (``__slots__``, lazy callback storage, the
combined queue key, the inlined run loop, the interrupt-gated resume
path) must not change *what* the kernel computes: events fire in
``(time, priority, sequence)`` order, simultaneous events fire in
scheduling order, and interrupts beat same-time normal events.

Two lines of defence:

* golden comparison — a scenario exercising timeouts, callbacks,
  processes, interrupts, and ``AnyOf``/``AllOf`` runs on both the
  frozen seed kernel (``benchmarks/legacy_kernel.py``) and the current
  kernel; the full ``(time, label)`` logs must match exactly;
* direct ordering assertions on the current kernel, reusing the
  scenario shapes from ``tests/test_sim_engine.py``.
"""

import sys
from pathlib import Path

import pytest

import repro.sim as current_kernel
from repro.sim import AllOf, AnyOf, Interrupt, Simulation

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import legacy_kernel  # noqa: E402


def run_scenario(kernel):
    """A mixed workload returning its complete (time, label) event log."""
    log = []
    sim = kernel.Simulation()

    def worker(sim, name, delays):
        for delay in delays:
            yield sim.timeout(delay)
            log.append((sim.now, f"{name}-tick"))
        return name

    def patient(sim):
        try:
            yield sim.timeout(50.0)
            log.append((sim.now, "patient-undisturbed"))
        except kernel.Interrupt as exc:
            log.append((sim.now, f"interrupted-{exc.cause}"))
            yield sim.timeout(1.5)
            log.append((sim.now, "patient-recovered"))

    def interrupter(sim, victim, after):
        yield sim.timeout(after)
        if victim.is_alive:
            victim.interrupt("poke")
        log.append((sim.now, "interrupter-done"))

    def combiner(sim, first, second):
        union = yield (first | second)
        log.append((sim.now, f"any-{len(union)}"))
        yield (first & second)
        log.append((sim.now, "all"))

    workers = [
        sim.process(worker(sim, f"w{i}", [(i % 3) + 1.0, 2.0, (i % 5) + 0.5]))
        for i in range(8)
    ]
    target = sim.process(patient(sim))
    sim.process(interrupter(sim, target, 3.0))
    sim.process(combiner(sim, workers[0], workers[1]))
    for i in range(5):
        # Five simultaneous plain timeouts: must fire in creation order.
        sim.timeout(4.0).callbacks.append(
            lambda event, i=i: log.append((sim.now, f"cb{i}"))
        )
    sim.run()
    log.append((sim.now, "end"))
    return log


class TestGoldenAgainstSeedKernel:
    def test_event_log_matches_seed_kernel(self):
        assert run_scenario(current_kernel) == run_scenario(legacy_kernel)

    def test_run_to_run_deterministic(self):
        assert run_scenario(current_kernel) == run_scenario(current_kernel)

    def test_final_clock_matches_seed_kernel(self):
        sims = []
        for kernel in (current_kernel, legacy_kernel):
            sim = kernel.Simulation()

            def pinger(sim):
                for i in range(100):
                    yield sim.timeout(0.1 * (i % 7) + 0.01)

            sim.process(pinger(sim))
            sim.run()
            sims.append(sim.now)
        assert sims[0] == sims[1]


class TestOrderingInvariants:
    def test_simultaneous_timeouts_fire_in_creation_order(self):
        sim = Simulation()
        fired = []
        for i in range(20):
            sim.timeout(1.0).callbacks.append(
                lambda event, i=i: fired.append(i)
            )
        sim.run()
        assert fired == list(range(20))

    def test_interrupt_beats_same_time_timeout(self):
        sim = Simulation()
        log = []
        box = []

        def sleeper(sim):
            try:
                yield sim.timeout(5.0)
                log.append("timeout-won")
            except Interrupt:
                log.append("interrupt-won")

        def interrupter(sim):
            yield sim.timeout(5.0)
            box[0].interrupt()

        # The interrupter is created first, so at t=5 it resumes before
        # the sleeper's timeout (scheduled later) fires.  Its interrupt
        # is queued *urgent* at t=5, jumping ahead of that already
        # queued same-time timeout.
        sim.process(interrupter(sim))
        box.append(sim.process(sleeper(sim)))
        sim.run()
        assert log == ["interrupt-won"]

    def test_process_completion_wakes_waiters_in_attach_order(self):
        sim = Simulation()
        woken = []

        def short(sim):
            yield sim.timeout(1.0)
            return "done"

        def waiter(sim, name, target):
            value = yield target
            woken.append((name, value))

        target = sim.process(short(sim))
        for name in ("a", "b", "c"):
            sim.process(waiter(sim, name, target))
        sim.run()
        assert woken == [("a", "done"), ("b", "done"), ("c", "done")]

    def test_condition_value_order_preserved(self):
        sim = Simulation()
        first, second = sim.timeout(2.0, "x"), sim.timeout(1.0, "y")
        gathered = AllOf(sim, [first, second])
        sim.run()
        assert list(gathered.value.values()) == ["x", "y"]

    def test_any_of_fires_at_earliest_event(self):
        sim = Simulation()
        either = AnyOf(sim, [sim.timeout(3.0, "slow"), sim.timeout(1.0, "quick")])
        result = sim.run(until=either)
        assert sim.now == 1.0
        assert list(result.values()) == ["quick"]

    def test_callbacks_contract_after_rework(self):
        sim = Simulation()
        timeout = sim.timeout(1.0)
        assert timeout.callbacks == []  # lazily allocated, still a list
        seen = []
        timeout.callbacks.append(lambda event: seen.append(event))
        sim.run()
        assert seen == [timeout]
        assert timeout.callbacks is None  # processed events expose None
        assert timeout.processed
