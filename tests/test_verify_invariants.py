"""Tests for the runtime invariant checker (repro.verify.invariants)."""

import pytest

from repro.faults.log import ErrorLog
from repro.verify import (
    InvariantSink,
    InvariantViolation,
    check_error_log,
    check_media_faults,
    run_scenario,
)


class _FakeCommand:
    def __init__(self, lbn, sectors, opcode="read"):
        self.lbn = lbn
        self.sectors = sectors
        self.opcode = type("Op", (), {"value": opcode})()


class _FakeRequest:
    def __init__(self, seq, lbn=0, sectors=8, opcode="read", source="fg"):
        self.seq = seq
        self.command = _FakeCommand(lbn, sectors, opcode)
        self.source = source
        self.submit_time = None
        self.complete_time = None

    def __repr__(self):
        return f"<req #{self.seq}>"


class TestLifecycle:
    def _sink(self, **kwargs):
        return InvariantSink(total_sectors=1024, **kwargs)

    def test_clean_lifecycle_passes(self):
        sink = self._sink()
        r = _FakeRequest(1)
        sink.request_queued(0.0, r)
        sink.request_dispatched(0.1, r)
        sink.request_completed(0.2, r)
        sink.finish()
        assert sink.queued_total == sink.completed_total == 1

    def test_queued_twice_rejected(self):
        sink = self._sink()
        r = _FakeRequest(1)
        sink.request_queued(0.0, r)
        with pytest.raises(InvariantViolation) as exc:
            sink.request_queued(0.1, r)
        assert exc.value.invariant == "request-lifecycle"
        assert "queued twice" in exc.value.message

    def test_dispatch_without_queue_rejected(self):
        sink = self._sink()
        with pytest.raises(InvariantViolation) as exc:
            sink.request_dispatched(0.0, _FakeRequest(7))
        assert "never queued" in exc.value.message

    def test_double_occupancy_rejected(self):
        sink = self._sink()
        a, b = _FakeRequest(1), _FakeRequest(2)
        sink.request_queued(0.0, a)
        sink.request_queued(0.0, b)
        sink.request_dispatched(0.1, a)
        with pytest.raises(InvariantViolation) as exc:
            sink.request_dispatched(0.2, b)
        assert exc.value.invariant == "queue-accounting"

    def test_completed_twice_rejected(self):
        sink = self._sink()
        r = _FakeRequest(1)
        sink.request_queued(0.0, r)
        sink.request_dispatched(0.1, r)
        sink.request_completed(0.2, r)
        with pytest.raises(InvariantViolation) as exc:
            sink.request_completed(0.3, r)
        assert "completed twice" in exc.value.message

    def test_unbalanced_finish_rejected(self):
        sink = self._sink()
        a, b = _FakeRequest(1), _FakeRequest(2)
        for r in (a, b):
            sink.request_queued(0.0, r)
        sink.request_dispatched(0.1, a)
        sink.request_completed(0.2, a)
        # b vanished from the dispatcher: still waiting, so finish is
        # legal — but a dropped *completion* is not.
        sink.finish()
        sink.request_dispatched(0.3, b)
        # b is now in flight; a single in-flight request is legal.
        sink.finish()

    def test_clock_backwards_rejected(self):
        sink = self._sink()
        sink.request_queued(1.0, _FakeRequest(1))
        with pytest.raises(InvariantViolation) as exc:
            sink.request_queued(0.5, _FakeRequest(2))
        assert exc.value.invariant == "clock-monotonicity"

    def test_lbn_bounds_rejected(self):
        sink = self._sink()
        with pytest.raises(InvariantViolation) as exc:
            sink.request_queued(0.0, _FakeRequest(1, lbn=1020, sectors=16))
        assert exc.value.invariant == "lbn-bounds"


class TestScrubCoverage:
    def test_full_coverage_passes(self):
        sink = InvariantSink(total_sectors=256)
        sink.scrub_pass_started(0.0, "scrub", 0)
        for i, lbn in enumerate(range(0, 256, 64)):
            now = 0.1 + i * 0.1
            r = _FakeRequest(lbn, lbn=lbn, sectors=64, opcode="verify",
                             source="scrub")
            sink.request_queued(now, r)
            sink.request_dispatched(now, r)
            sink.request_completed(now + 0.05, r)
        sink.scrub_pass_completed(1.0, "scrub", 0, 256 * 512)

    def test_gap_rejected_with_gap_list(self):
        sink = InvariantSink(total_sectors=256)
        sink.scrub_pass_started(0.0, "scrub", 0)
        for i, lbn in enumerate((0, 128, 192)):  # [64, 128) never verified
            now = 0.1 + i * 0.1
            r = _FakeRequest(lbn, lbn=lbn, sectors=64, opcode="verify",
                             source="scrub")
            sink.request_queued(now, r)
            sink.request_dispatched(now, r)
            sink.request_completed(now + 0.05, r)
        with pytest.raises(InvariantViolation) as exc:
            sink.scrub_pass_completed(1.0, "scrub", 0, 192 * 512)
        assert exc.value.invariant == "scrub-coverage"
        assert "(64, 128)" in exc.value.message

    def test_progress_fraction_bounds(self):
        sink = InvariantSink(total_sectors=256)
        sink.scrub_progress(0.0, "scrub", 0.5)
        with pytest.raises(InvariantViolation):
            sink.scrub_progress(0.1, "scrub", 1.25)


class TestFaultLifecycle:
    def test_double_remap_rejected(self):
        sink = InvariantSink(total_sectors=1024)
        sink.fault_event(0.0, "remap", 17)
        with pytest.raises(InvariantViolation) as exc:
            sink.fault_event(0.1, "remap", 17)
        assert exc.value.invariant == "fault-lifecycle"

    def test_verify_after_remap_needs_remap(self):
        sink = InvariantSink(total_sectors=1024)
        with pytest.raises(InvariantViolation):
            sink.fault_event(0.0, "verify_after_remap", 17)
        sink = InvariantSink(total_sectors=1024)
        sink.fault_event(0.0, "remap", 17)
        sink.fault_event(0.1, "verify_after_remap", 17)  # legal order

    def test_fault_lbn_bounds(self):
        sink = InvariantSink(total_sectors=64)
        with pytest.raises(InvariantViolation) as exc:
            sink.fault_event(0.0, "remap", 64)
        assert exc.value.invariant == "lbn-bounds"


class TestViolationReport:
    def test_report_carries_window(self):
        sink = InvariantSink(total_sectors=1024)
        for i in range(40):
            sink.request_queued(i * 0.01, _FakeRequest(i))
        with pytest.raises(InvariantViolation) as exc:
            sink.request_queued(0.0, _FakeRequest(99))
        violation = exc.value
        assert violation.time == 0.0
        assert 0 < len(violation.window) <= 32
        text = violation.report()
        assert "clock-monotonicity" in text
        assert "request_queued" in text
        assert str(violation) == text


class TestErrorLogChecks:
    def test_clean_log_passes(self):
        log = ErrorLog()
        log.record_injected(0.0, 5)
        log.record_media_error(1.0, 5, source="scrub", opcode="verify")
        log.record_reallocated(1.1, 5, ok=True)
        log.record_verify_after_remap(1.2, 5, ok=True)
        check_error_log(log)

    def test_detection_before_onset_rejected(self):
        log = ErrorLog()
        log.record_injected(2.0, 5)
        log.record_media_error(1.0, 5, source="scrub", opcode="verify")
        with pytest.raises(InvariantViolation) as exc:
            check_error_log(log)
        assert "before its onset" in exc.value.message

    def test_double_reallocation_rejected(self):
        log = ErrorLog()
        log.record_injected(0.0, 5)
        log.record_media_error(1.0, 5, source="scrub", opcode="verify")
        log.record_reallocated(1.1, 5, ok=True)
        log.record_reallocated(1.2, 5, ok=True)
        with pytest.raises(InvariantViolation) as exc:
            check_error_log(log)
        assert "reallocated twice" in exc.value.message


class TestEndToEnd:
    """The sink rides along a real scenario without firing."""

    @pytest.mark.parametrize("algorithm", ["sequential", "staggered", "waiting"])
    def test_clean_scenarios_validate(self, algorithm):
        outcome = run_scenario(
            algorithm=algorithm,
            horizon=0.2,
            telemetry="invariants",
        )
        assert outcome["completed"] > 0

    def test_fault_injected_scenario_validates(self):
        outcome = run_scenario(
            family="fault-injected",
            model="bernoulli",
            cache_enabled=False,
            horizon=0.25,
            telemetry="invariants",
        )
        assert outcome["faults"]["injected"] > 0
        check_media_faults_args = outcome["faults"]
        assert check_media_faults_args["remapped"] >= 0
