"""Successive-halving parameter search (repro.core.search) and its
differential safety contract vs the exhaustive grid
(repro.verify.search).

The search is a pruning optimisation: same answer (within the
documented 1% throughput tolerance — identical in practice), a
fraction of the simulation effort, and bit-identical reruns under the
same seed.
"""

import numpy as np
import pytest

from repro.analysis.service_model import ScrubServiceModel
from repro.analysis.slowdown import SIM_METER
from repro.core.optimizer import ScrubParameterOptimizer
from repro.core.search import (
    MIN_RUNG_SAMPLE,
    SearchOutcome,
    SuccessiveHalvingSearch,
)
from repro.disk.models import PRESETS
from repro.traces import generate_trace
from repro.traces.idle import idle_intervals_from_trace
from repro.verify import DifferentialMismatch, check_search_vs_grid
from repro.verify.search import DEFAULT_SEARCH_TOLERANCE


@pytest.fixture(scope="module")
def workload():
    """One seeded catalog workload's tuning inputs (module-cached)."""
    trace = generate_trace("MSRusr2", duration=1800, seed=0)
    _, durations = idle_intervals_from_trace(trace)
    model = ScrubServiceModel.from_spec(PRESETS["ultrastar"]())
    return {
        "durations": durations,
        "total_requests": len(trace),
        "span": trace.duration,
        "service_model": model,
    }


GOAL = 0.002  # 2ms mean slowdown


class TestSearch:
    def test_matches_exhaustive_grid(self, workload):
        grid = ScrubParameterOptimizer(**workload).optimize(GOAL)
        outcome = SuccessiveHalvingSearch(**workload).search(GOAL)
        assert outcome.best.request_bytes == grid.request_bytes
        assert outcome.best.threshold == grid.threshold
        assert outcome.best.throughput == grid.throughput

    def test_same_seed_rerun_bit_identical(self, workload):
        a = SuccessiveHalvingSearch(**workload, seed=42).search(GOAL)
        b = SuccessiveHalvingSearch(**workload, seed=42).search(GOAL)
        assert a.best == b.best
        assert a.rungs == b.rungs  # same subsamples, sims, survivors
        assert a.sims == b.sims

    def test_seed_changes_subsample_not_answer(self, workload):
        a = SuccessiveHalvingSearch(**workload, seed=1).search(GOAL)
        b = SuccessiveHalvingSearch(**workload, seed=2).search(GOAL)
        assert a.best.request_bytes == b.best.request_bytes
        assert a.best.throughput == b.best.throughput

    def test_costs_a_fraction_of_the_grid(self, workload):
        before = SIM_METER.snapshot()
        ScrubParameterOptimizer(**workload).optimize(GOAL, prune=False)
        mid = SIM_METER.snapshot()
        outcome = SuccessiveHalvingSearch(**workload).search(GOAL)
        grid_evals = mid["interval_evals"] - before["interval_evals"]
        assert outcome.interval_evals * 5 <= grid_evals

    def test_effort_accounting_via_sim_meter(self, workload):
        outcome = SuccessiveHalvingSearch(**workload).search(GOAL)
        assert isinstance(outcome, SearchOutcome)
        assert outcome.sims > 0 and outcome.interval_evals > 0
        assert outcome.rungs  # at least one elimination rung ran
        rung0 = outcome.rungs[0]
        assert rung0.sample >= min(
            MIN_RUNG_SAMPLE, len(workload["durations"])
        )
        # survivors shrink monotonically toward the final rung
        for prev, nxt in zip(outcome.rungs, outcome.rungs[1:]):
            assert set(nxt.arms) == set(prev.survivors)
            assert len(nxt.survivors) <= len(prev.survivors)

    def test_invalid_goal_raises_like_the_grid(self, workload):
        with pytest.raises(ValueError, match="slowdown_goal"):
            ScrubParameterOptimizer(**workload).optimize(0.0)
        with pytest.raises(ValueError, match="slowdown_goal"):
            SuccessiveHalvingSearch(**workload).search(0.0)

    def test_extreme_goal_still_matches_the_grid(self, workload):
        """A goal near float resolution forces every rung to the
        max-threshold corner; search and grid must still agree."""
        goal = 1e-9
        grid = ScrubParameterOptimizer(**workload).optimize(goal)
        outcome = SuccessiveHalvingSearch(**workload).search(goal)
        assert outcome.best.achieved_slowdown <= goal
        assert outcome.best.throughput >= grid.throughput * (
            1 - DEFAULT_SEARCH_TOLERANCE
        )

    def test_schedule_validation(self, workload):
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalvingSearch(**workload, eta=1)
        with pytest.raises(ValueError, match="keep_min"):
            SuccessiveHalvingSearch(**workload, keep_min=0)
        with pytest.raises(ValueError, match="increasing"):
            SuccessiveHalvingSearch(**workload, rung_fractions=(0.5, 0.1))
        with pytest.raises(ValueError, match="iteration counts"):
            SuccessiveHalvingSearch(**workload, rung_iterations=0)

    def test_tiny_sample_degenerates_to_exact_search(self, workload):
        """With fewer intervals than MIN_RUNG_SAMPLE every rung sees the
        full sample, so the search is the grid restricted to survivors."""
        small = {**workload, "durations": workload["durations"][:512]}
        grid = ScrubParameterOptimizer(**small).optimize(GOAL)
        outcome = SuccessiveHalvingSearch(**small).search(GOAL)
        assert outcome.best.throughput >= grid.throughput * (
            1 - DEFAULT_SEARCH_TOLERANCE
        )


class TestSearchDifferential:
    def test_contract_holds_on_seeded_workload(self, workload):
        report = check_search_vs_grid(slowdown_goal=GOAL, **workload)
        assert report["speedup"] >= 5.0
        assert report["grid"].request_bytes == (
            report["search"].best.request_bytes
        )

    def test_violation_is_reported_as_mismatch(self, workload, monkeypatch):
        # Sabotage the schedule the checker builds (keep only 1 arm
        # from a 16-interval glance at the sample, no safety margin):
        # the contract must be able to actually fail.
        import repro.verify.search as vs

        def sabotaged(*args, **kwargs):
            kwargs.update(
                rung_fractions=(1 / 512,), keep_min=1, eta=64,
                min_sample=16, rung_iterations=1,
            )
            return SuccessiveHalvingSearch(*args, **kwargs)

        monkeypatch.setattr(vs, "SuccessiveHalvingSearch", sabotaged)
        for seed in range(5):
            try:
                vs.check_search_vs_grid(
                    slowdown_goal=GOAL, seed=seed, **workload
                )
            except DifferentialMismatch as exc:
                assert exc.axis == "search"
                return
        pytest.skip("sabotaged schedule still found the optimum (5 seeds)")

    def test_runner_path_shares_cache_with_grid(self, workload, tmp_path):
        from repro.parallel import ResultCache, SweepRunner

        cache = ResultCache(tmp_path)
        runner = SweepRunner(workers=0, cache=cache)
        ScrubParameterOptimizer(**workload).optimize(GOAL, runner=runner)
        misses_after_grid = cache.misses
        outcome = SuccessiveHalvingSearch(**workload).search(
            GOAL, runner=runner
        )
        # the final rung's tasks are grid tasks: all served from cache
        assert cache.misses == misses_after_grid
        assert cache.hits > 0
        grid = ScrubParameterOptimizer(**workload).optimize(GOAL)
        assert outcome.best.request_bytes == grid.request_bytes


def _autotune_stack():
    from repro.core import SequentialScrub
    from repro.core.policies import WaitingScrubber
    from repro.disk import Drive, hitachi_ultrastar_15k450
    from repro.sched import BlockDevice, NoopScheduler
    from repro.sim import Simulation

    sim = Simulation()
    device = BlockDevice(
        sim,
        Drive(hitachi_ultrastar_15k450(), cache_enabled=False),
        NoopScheduler(),
    )
    scrubber = WaitingScrubber(
        sim, device, SequentialScrub(), threshold=0.5, request_bytes=65536
    )
    return sim, device, scrubber


class TestAutoTunerSearch:
    #: Cheap two-point service model, as in test_autotune.py.
    SERVICE = ScrubServiceModel([65536, 4 * 1024 * 1024], [0.005, 0.045])

    def _run_tuner(self, method):
        from repro.core.autotune import AutoTuner
        from repro.disk import DiskCommand
        from repro.sched import IORequest
        from repro.sim import RandomStreams

        sim, device, scrubber = _autotune_stack()
        scrubber.start()
        rng = RandomStreams(seed=5).get("fg")

        def foreground():
            for _ in range(2000):
                done = device.submit(IORequest(DiskCommand.read(0, 8)))
                yield done
                yield sim.timeout(rng.exponential(0.05))

        sim.process(foreground())
        tuner = AutoTuner(
            sim, scrubber, self.SERVICE, slowdown_goal=0.001,
            retune_interval=5.0, min_samples=50, method=method,
        )
        tuner.start()
        sim.run(until=30.0)
        return tuner

    def test_autotune_method_search_matches_grid(self):
        grid = self._run_tuner("grid")
        search = self._run_tuner("search")
        assert grid.retunes >= 1 and search.retunes == grid.retunes
        a, b = grid.history[-1], search.history[-1]
        assert b.request_bytes == a.request_bytes
        assert b.throughput == a.throughput

    def test_autotune_rejects_unknown_method(self):
        from repro.core.autotune import AutoTuner

        sim, device, scrubber = _autotune_stack()
        with pytest.raises(ValueError, match="method"):
            AutoTuner(
                sim, scrubber, self.SERVICE, slowdown_goal=GOAL,
                method="annealing",
            )
