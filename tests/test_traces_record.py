"""Tests for the Trace container and CSV round-tripping (repro.traces)."""

import numpy as np
import pytest

from repro.traces import (
    Trace,
    TraceFormatError,
    TraceRecord,
    iter_trace_chunks,
    read_csv_trace,
    write_csv_trace,
)


def make_trace(**meta):
    return Trace(
        times=[0.0, 1.0, 2.5, 2.5, 10.0],
        lbns=[100, 200, 100, 300, 50],
        sectors=[8, 16, 8, 32, 8],
        is_write=[False, True, False, False, True],
        **meta,
    )


class TestTrace:
    def test_len_and_duration(self):
        trace = make_trace()
        assert len(trace) == 5
        assert trace.duration == 10.0

    def test_empty_trace(self):
        trace = Trace(np.zeros(0), np.zeros(0, int), np.ones(0, int), np.zeros(0, bool))
        assert len(trace) == 0
        assert trace.duration == 0.0

    def test_interarrivals(self):
        trace = make_trace()
        assert np.allclose(trace.interarrivals, [1.0, 1.5, 0.0, 7.5])

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            Trace([1.0, 0.5], [0, 0], [8, 8], [False, False])

    def test_rejects_bad_sectors_and_lbns(self):
        with pytest.raises(ValueError):
            Trace([0.0], [0], [0], [False])
        with pytest.raises(ValueError):
            Trace([0.0], [-1], [8], [False])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Trace([0.0, 1.0], [0], [8], [False])

    def test_records_iteration(self):
        trace = make_trace()
        records = list(trace.records())
        assert len(records) == 5
        assert records[1] == TraceRecord(time=1.0, lbn=200, sectors=16, is_write=True)

    def test_window_rebases_times(self):
        trace = make_trace()
        sub = trace.window(1.0, 3.0)
        assert len(sub) == 3
        assert sub.times[0] == 0.0
        assert np.allclose(sub.times, [0.0, 1.5, 1.5])

    def test_window_invalid(self):
        with pytest.raises(ValueError):
            make_trace().window(5.0, 1.0)

    def test_requests_per_bin(self):
        trace = make_trace()
        counts = trace.requests_per_bin(bin_seconds=5.0)
        assert counts.tolist() == [4, 1]

    def test_requests_per_bin_invalid(self):
        with pytest.raises(ValueError):
            make_trace().requests_per_bin(0)

    def test_from_records_roundtrip(self):
        trace = make_trace(name="t")
        rebuilt = Trace.from_records(trace.records(), name="t")
        assert np.allclose(rebuilt.times, trace.times)
        assert np.array_equal(rebuilt.lbns, trace.lbns)


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        trace = make_trace(
            name="unit", description="round trip", capacity_sectors=1000
        )
        path = tmp_path / "trace.csv"
        write_csv_trace(trace, path)
        loaded = read_csv_trace(path)
        assert loaded.name == "unit"
        assert loaded.description == "round trip"
        assert loaded.capacity_sectors == 1000
        assert np.allclose(loaded.times, trace.times)
        assert np.array_equal(loaded.lbns, trace.lbns)
        assert np.array_equal(loaded.is_write, trace.is_write)

    def test_roundtrip_gzip(self, tmp_path):
        trace = make_trace(name="zipped")
        path = tmp_path / "trace.csv.gz"
        write_csv_trace(trace, path)
        loaded = read_csv_trace(path)
        assert len(loaded) == len(trace)

    def test_msr_dialect(self, tmp_path):
        path = tmp_path / "msr.csv"
        ticks = 10_000_000
        path.write_text(
            f"128166372003061629,src1,1,Read,{512 * 1000},4096,1500\n"
            f"{128166372003061629 + ticks},src1,1,Write,{512 * 2000},8192,800\n"
        )
        trace = read_csv_trace(path)
        assert len(trace) == 2
        assert trace.times[0] == 0.0
        assert trace.times[1] == pytest.approx(1.0)
        assert trace.lbns.tolist() == [1000, 2000]
        assert trace.sectors.tolist() == [8, 16]
        assert trace.is_write.tolist() == [False, True]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# name: nothing\n")
        trace = read_csv_trace(path)
        assert len(trace) == 0
        assert trace.name == "nothing"

    def test_unrecognised_dialect(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        with pytest.raises(ValueError, match="dialect"):
            read_csv_trace(path)

    def test_unsorted_canonical_is_sorted(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text(
            "time,lbn,sectors,op\n5.0,10,8,R\n1.0,20,8,W\n"
        )
        trace = read_csv_trace(path)
        assert trace.times.tolist() == [1.0, 5.0]
        assert trace.lbns.tolist() == [20, 10]


class TestTraceFormatError:
    """Malformed rows fail with the offending line number in the message."""

    CANONICAL = "# name: t\ntime,lbn,sectors,op\n0.5,100,8,R\n"

    def test_is_a_value_error(self):
        assert issubclass(TraceFormatError, ValueError)

    def test_wrong_column_count_names_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(self.CANONICAL + "1.0,200,8\n")
        with pytest.raises(TraceFormatError, match=r"t\.csv:4: malformed row"):
            read_csv_trace(path)

    def test_non_numeric_field_names_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(self.CANONICAL + "1.0,200,8,W\n2.0,oops,8,R\n")
        with pytest.raises(
            TraceFormatError, match=r"t\.csv:5: non-numeric lbn: 'oops'"
        ):
            read_csv_trace(path)

    def test_negative_offset_names_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(self.CANONICAL + "1.0,-200,8,W\n")
        with pytest.raises(TraceFormatError, match=r"t\.csv:4: negative lbn"):
            read_csv_trace(path)

    def test_non_positive_sectors_names_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(self.CANONICAL + "1.0,200,0,W\n")
        with pytest.raises(
            TraceFormatError, match=r"t\.csv:4: non-positive sectors"
        ):
            read_csv_trace(path)

    def test_unknown_op_names_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(self.CANONICAL + "1.0,200,8,X\n")
        with pytest.raises(
            TraceFormatError, match=r"t\.csv:4: unknown operation"
        ):
            read_csv_trace(path)

    def test_missing_column_names_header_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time,lbn,op\n1.0,200,R\n")
        with pytest.raises(
            TraceFormatError, match=r"t\.csv:1: .*missing column 'sectors'"
        ):
            read_csv_trace(path)

    def test_bad_capacity_metadata_names_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# capacity_sectors: lots\ntime,lbn,sectors,op\n")
        with pytest.raises(
            TraceFormatError, match=r"t\.csv:1: non-numeric capacity_sectors"
        ):
            read_csv_trace(path)

    def test_msr_negative_offset_names_line(self, tmp_path):
        path = tmp_path / "msr.csv"
        path.write_text(
            "128166372003061629,src1,1,Read,512000,4096,1500\n"
            "128166372013061629,src1,1,Write,-512,8192,800\n"
        )
        with pytest.raises(
            TraceFormatError, match=r"msr\.csv:2: negative offset_bytes"
        ):
            read_csv_trace(path)

    def test_msr_non_numeric_timestamp_names_line(self, tmp_path):
        path = tmp_path / "msr.csv"
        path.write_text(
            "128166372003061629,src1,1,Read,512000,4096,1500\n"
            "tick,src1,1,Read,512000,4096,1500\n"
        )
        with pytest.raises(
            TraceFormatError, match=r"msr\.csv:2: non-numeric timestamp"
        ):
            read_csv_trace(path)

    def test_good_files_still_parse(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(self.CANONICAL + "1.0,200,8,W\n")
        trace = read_csv_trace(path)
        assert len(trace) == 2
        assert trace.is_write.tolist() == [False, True]


class TestReadLimits:
    def _write(self, tmp_path, n=50, gz=False):
        trace = Trace(
            times=np.arange(n, dtype=float) * 0.5,
            lbns=np.arange(n) * 8,
            sectors=np.full(n, 8),
            is_write=np.arange(n) % 2 == 0,
            name="limits",
        )
        path = tmp_path / ("t.csv.gz" if gz else "t.csv")
        write_csv_trace(trace, path)
        return trace, path

    def test_max_requests_prefix(self, tmp_path):
        trace, path = self._write(tmp_path)
        loaded = read_csv_trace(path, max_requests=10)
        assert len(loaded) == 10
        assert np.array_equal(loaded.times, trace.times[:10])
        assert np.array_equal(loaded.lbns, trace.lbns[:10])

    def test_max_requests_zero_and_overshoot(self, tmp_path):
        trace, path = self._write(tmp_path)
        assert len(read_csv_trace(path, max_requests=0)) == 0
        assert len(read_csv_trace(path, max_requests=10_000)) == len(trace)

    def test_max_requests_negative_rejected(self, tmp_path):
        _, path = self._write(tmp_path)
        with pytest.raises(ValueError, match="max_requests"):
            read_csv_trace(path, max_requests=-1)

    def test_max_requests_on_gzip(self, tmp_path):
        trace, path = self._write(tmp_path, gz=True)
        loaded = read_csv_trace(path, max_requests=7)
        assert np.array_equal(loaded.times, trace.times[:7])


class TestIterTraceChunks:
    def test_chunked_equals_whole_canonical(self, tmp_path):
        n = 37
        trace = Trace(
            times=np.arange(n, dtype=float) * 0.25,
            lbns=np.arange(n) * 16,
            sectors=np.full(n, 8),
            is_write=np.zeros(n, bool),
        )
        path = tmp_path / "t.csv"
        write_csv_trace(trace, path)
        chunks = list(iter_trace_chunks(path, chunk_requests=10))
        assert [len(c) for c in chunks] == [10, 10, 10, 7]
        assert np.array_equal(
            np.concatenate([c.times for c in chunks]), trace.times
        )
        assert np.array_equal(
            np.concatenate([c.lbns for c in chunks]), trace.lbns
        )

    def test_chunked_equals_whole_msr(self, tmp_path):
        path = tmp_path / "msr.csv"
        base = 128166372003061629
        rows = [
            f"{base + i * 2_500_000},src1,1,{'Write' if i % 3 else 'Read'},"
            f"{512 * (100 + i)},4096,800"
            for i in range(25)
        ]
        path.write_text("\n".join(rows) + "\n")
        whole = read_csv_trace(path)
        chunks = list(iter_trace_chunks(path, chunk_requests=8))
        assert np.array_equal(
            np.concatenate([c.times for c in chunks]), whole.times
        )
        assert np.array_equal(
            np.concatenate([c.lbns for c in chunks]), whole.lbns
        )
        assert np.array_equal(
            np.concatenate([c.is_write for c in chunks]), whole.is_write
        )

    def test_chunked_gzip_with_cap(self, tmp_path):
        n = 30
        trace = Trace(
            times=np.arange(n, dtype=float),
            lbns=np.arange(n),
            sectors=np.full(n, 8),
            is_write=np.zeros(n, bool),
        )
        path = tmp_path / "t.csv.gz"
        write_csv_trace(trace, path)
        chunks = list(
            iter_trace_chunks(path, chunk_requests=8, max_requests=20)
        )
        assert sum(len(c) for c in chunks) == 20
        assert np.array_equal(
            np.concatenate([c.times for c in chunks]), trace.times[:20]
        )

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# name: nothing\n")
        assert list(iter_trace_chunks(path)) == []
