"""Shared-memory trace shipping: TraceArrays lifecycle and the
SweepRunner zero-copy path (repro.traces.shm, repro.parallel.runner)."""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.parallel import ResultCache, SweepRunner
from repro.parallel.cache import canonicalize
from repro.traces import Trace, TraceArrays, generate_trace
from repro.traces.shm import TraceHandle


def make_trace(**meta):
    return Trace(
        times=[0.0, 1.0, 2.5, 2.5, 10.0],
        lbns=[100, 200, 100, 300, 50],
        sectors=[8, 16, 8, 32, 8],
        is_write=[False, True, False, False, True],
        **meta,
    )


def _psm_segments():
    root = Path("/dev/shm")
    if not root.is_dir():
        pytest.skip("no /dev/shm on this platform")
    return {p.name for p in root.iterdir() if p.name.startswith("psm_")}


# -- picklable worker tasks --------------------------------------------------

def _trace_stats(trace, factor=1):
    return (len(trace), float(trace.times[-1]), trace.digest()[:12], factor)


def _flaky_trace(sentinel, trace, crash=False):
    """Kills its worker once, then succeeds on the retry."""
    if crash and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)
    return len(trace)


def _interrupt(trace, boom=False):
    if boom:
        raise KeyboardInterrupt
    return len(trace)


class TestTraceArrays:
    def test_export_attach_round_trip(self):
        trace = make_trace(name="tiny", capacity_sectors=4096)
        with TraceArrays.from_trace(trace) as arrays:
            attached = TraceArrays.attach(arrays.handle)
            try:
                copy = attached.as_trace()
                assert np.array_equal(copy.times, trace.times)
                assert np.array_equal(copy.lbns, trace.lbns)
                assert np.array_equal(copy.sectors, trace.sectors)
                assert np.array_equal(copy.is_write, trace.is_write)
                assert copy.name == "tiny"
                assert copy.capacity_sectors == 4096
            finally:
                attached.close()

    def test_handle_is_small_and_carries_digest(self):
        trace = make_trace()
        with TraceArrays.from_trace(trace) as arrays:
            handle = arrays.handle
            assert isinstance(handle, TraceHandle)
            assert handle.length == len(trace)
            assert handle.digest == trace.digest()

    def test_attached_trace_digest_is_seeded_not_recomputed(self):
        trace = make_trace()
        with TraceArrays.from_trace(trace) as arrays:
            attached = TraceArrays.attach(arrays.handle)
            try:
                copy = attached.as_trace()
                # Seeded from the handle at attach time, before digest()
                # is ever called: no O(n) rehash in the worker.
                assert copy._digest == trace.digest()
                assert copy.digest() == trace.digest()
            finally:
                attached.close()

    def test_attached_views_are_zero_copy(self):
        trace = make_trace()
        with TraceArrays.from_trace(trace) as arrays:
            attached = TraceArrays.attach(arrays.handle)
            try:
                copy = attached.as_trace()
                assert not copy.times.flags.owndata
                assert not copy.lbns.flags.owndata
            finally:
                attached.close()

    def test_cleanup_unlinks_segment(self):
        trace = make_trace()
        arrays = TraceArrays.from_trace(trace)
        handle = arrays.handle
        arrays.cleanup()
        with pytest.raises(FileNotFoundError):
            TraceArrays.attach(handle)

    def test_cleanup_is_idempotent(self):
        arrays = TraceArrays.from_trace(make_trace())
        arrays.cleanup()
        arrays.cleanup()  # second call must not raise

    def test_empty_trace_round_trips(self):
        empty = Trace(
            np.zeros(0), np.zeros(0, int), np.ones(0, int), np.zeros(0, bool)
        )
        with TraceArrays.from_trace(empty) as arrays:
            attached = TraceArrays.attach(arrays.handle)
            try:
                assert len(attached.as_trace()) == 0
            finally:
                attached.close()


class TestSweepRunnerShm:
    def test_parallel_results_match_serial_and_pickled(self):
        trace = generate_trace("MSRsrc11", duration=60.0, seed=5)
        params = [{"trace": trace, "factor": i} for i in range(4)]
        serial = SweepRunner(workers=0).map(_trace_stats, params)
        shm = SweepRunner(workers=2).map(_trace_stats, params)
        pickled = SweepRunner(workers=2, share_traces=False).map(
            _trace_stats, params
        )
        assert serial == shm == pickled

    def test_segments_unlinked_after_successful_map(self):
        before = _psm_segments()
        trace = generate_trace("MSRsrc11", duration=60.0, seed=5)
        SweepRunner(workers=2).map(
            _trace_stats, [{"trace": trace, "factor": i} for i in range(3)]
        )
        assert _psm_segments() - before == set()

    def test_worker_crash_retry_still_sees_the_trace(self, tmp_path):
        before = _psm_segments()
        trace = make_trace()
        sentinel = str(tmp_path / "crashed-once")
        params = [
            {"sentinel": sentinel, "trace": trace, "crash": i == 1}
            for i in range(4)
        ]
        results = SweepRunner(workers=2).map(_flaky_trace, params)
        assert results == [len(trace)] * 4
        assert _psm_segments() - before == set()

    def test_keyboard_interrupt_cleans_segments(self):
        before = _psm_segments()
        trace = make_trace()
        params = [{"trace": trace, "boom": i == 1} for i in range(3)]
        with pytest.raises(KeyboardInterrupt):
            SweepRunner(workers=2).map(_interrupt, params)
        assert _psm_segments() - before == set()

    def test_cache_hits_create_no_segments(self, tmp_path, monkeypatch):
        trace = generate_trace("MSRsrc11", duration=60.0, seed=5)
        params = [{"trace": trace, "factor": i} for i in range(3)]
        cache = ResultCache(str(tmp_path))
        warm = SweepRunner(workers=2, cache=cache).map(_trace_stats, params)

        def _no_export(*args, **kwargs):
            raise AssertionError("cache hits must not export shared memory")

        monkeypatch.setattr(TraceArrays, "from_trace", _no_export)
        again = SweepRunner(workers=2, cache=cache).map(_trace_stats, params)
        assert again == warm
        assert cache.hits == len(params)

    def test_single_pending_task_skips_export(self, monkeypatch):
        # One task isn't worth a segment: it just runs serially.
        trace = make_trace()

        def _no_export(*args, **kwargs):
            raise AssertionError("single tasks must not export shared memory")

        monkeypatch.setattr(TraceArrays, "from_trace", _no_export)
        results = SweepRunner(workers=2).map(
            _trace_stats, [{"trace": trace}]
        )
        assert results == [_trace_stats(trace)]


class TestTraceCacheKeys:
    def test_canonicalize_uses_content_digest(self):
        trace = make_trace(name="a")
        assert canonicalize(trace) == ("trace", trace.digest())

    def test_same_name_different_content_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        t1 = generate_trace("MSRsrc11", duration=60.0, seed=1)
        t2 = generate_trace("MSRsrc11", duration=60.0, seed=2)
        assert cache.key(_trace_stats, {"trace": t1}) != cache.key(
            _trace_stats, {"trace": t2}
        )

    def test_same_content_same_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        t1 = generate_trace("MSRsrc11", duration=60.0, seed=1)
        t2 = generate_trace("MSRsrc11", duration=60.0, seed=1)
        assert t1 is not t2
        assert cache.key(_trace_stats, {"trace": t1}) == cache.key(
            _trace_stats, {"trace": t2}
        )
