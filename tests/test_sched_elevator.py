"""Tests for the C-LOOK elevator (repro.sched.elevator)."""

import pytest

from repro.disk.commands import DiskCommand
from repro.sched import ElevatorQueue, IORequest


def req(lbn, sectors=8):
    request = IORequest(DiskCommand.read(lbn, sectors))
    request.stamp_submit(0.0)
    return request


def test_empty_queue():
    queue = ElevatorQueue()
    assert len(queue) == 0
    assert not queue
    assert queue.peek(0) is None
    assert queue.pop(0) is None
    assert queue.oldest() is None


def test_ascending_service_from_position_zero():
    queue = ElevatorQueue()
    for lbn in (300, 100, 200):
        queue.add(req(lbn))
    order = [queue.pop(0).command.lbn for _ in range(3)]
    assert order == [100, 200, 300]


def test_clook_starts_at_position():
    queue = ElevatorQueue()
    for lbn in (100, 200, 300):
        queue.add(req(lbn))
    assert queue.pop(150).command.lbn == 200


def test_clook_wraps_to_lowest():
    queue = ElevatorQueue()
    for lbn in (100, 200):
        queue.add(req(lbn))
    assert queue.pop(500).command.lbn == 100


def test_peek_does_not_remove():
    queue = ElevatorQueue()
    queue.add(req(100))
    assert queue.peek(0).command.lbn == 100
    assert len(queue) == 1


def test_remove_specific_request():
    queue = ElevatorQueue()
    a, b = req(100), req(100)
    queue.add(a)
    queue.add(b)
    queue.remove(a)
    assert queue.requests() == [b]
    with pytest.raises(ValueError):
        queue.remove(a)


def test_oldest_by_submission_sequence():
    queue = ElevatorQueue()
    first, second = req(900), req(100)
    queue.add(first)
    queue.add(second)
    assert queue.oldest() is first


def test_requests_snapshot_in_lbn_order():
    queue = ElevatorQueue()
    for lbn in (5, 1, 3):
        queue.add(req(lbn))
    assert [r.command.lbn for r in queue.requests()] == [1, 3, 5]


def test_full_sweep_is_one_pass():
    """A C-LOOK sweep from any position visits each request once."""
    queue = ElevatorQueue()
    lbns = [10, 50, 20, 80, 40]
    for lbn in lbns:
        queue.add(req(lbn))
    position = 45
    served = []
    while queue:
        request = queue.pop(position)
        served.append(request.command.lbn)
        position = request.command.end_lbn
    assert served == [50, 80, 10, 20, 40]
