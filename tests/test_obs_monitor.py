"""Tests for the campaign monitor (PR 8).

Two contracts dominate:

* **passivity** — a campaign run with a monitor attached produces
  bit-identical metrics and telemetry to a bare run, serial or
  supervised-parallel, fresh or resumed;
* **monotone durable progress** — the ``progress`` field counts only
  checkpoint-durable shards, so it never decreases across a kill +
  resume, while ``progress_live`` may.

Plus the operator surfaces themselves: status.json schema and atomic
replacement, the append-only event log, utilization/straggler math,
and the fold into summary.json.
"""

import json

import pytest

from repro.fleet import (
    CampaignRunner,
    CampaignSpec,
    DriveClass,
    FleetSpec,
    ScrubPolicySpec,
)
from repro.obs import STATUS_VERSION, CampaignMonitor
from repro.parallel import RetryPolicy


class _FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def _spec(groups=48, shards=4, seed=11):
    return CampaignSpec(
        fleet=FleetSpec(
            groups=groups,
            disks_per_group=4,
            mttr_hours=24.0,
            spare_delay_hours=6.0,
            classes=(
                DriveClass(mttf_hours=2.0e4, lse_burst_rate_per_hour=2e-4),
            ),
        ),
        policies=(
            ScrubPolicySpec(name="weekly", latent_window_hours=84.0),
            ScrubPolicySpec(
                name="staggered", algorithm="staggered",
                latent_window_hours=60.0,
            ),
        ),
        mission_years=5.0,
        seed=seed,
        shards=shards,
    )


def _monitor(tmp_path, **kwargs):
    kwargs.setdefault("interval", 0.0)
    return CampaignMonitor(str(tmp_path), **kwargs)


_FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_max=0.0, jitter=0.0)

_RANGES = [(0, 10), (10, 10), (20, 10), (30, 10)]


def _started(monitor, workers=2, ranges=_RANGES):
    monitor.campaign_started(
        digest="d" * 64,
        shard_ranges=ranges,
        policy_names=["weekly", "staggered"],
        workers=workers,
        mission_years=5.0,
        disks_per_group=4,
    )


class TestLifecycleUnit:
    """Monitor driven by hand with a fake clock — no campaign."""

    def test_status_schema(self, tmp_path):
        clock = _FakeClock()
        monitor = _monitor(tmp_path, clock=clock, wall_clock=lambda: 7.0)
        _started(monitor)
        status = json.loads((tmp_path / "status.json").read_text())
        assert status["version"] == STATUS_VERSION
        assert status["state"] == "running"
        assert status["progress"] == 0.0
        assert status["shards"]["total"] == 4
        assert status["groups"] == {"total": 40, "done": 0}
        assert status["workers"]["configured"] == 2
        assert status["updated_unix"] == 7.0
        assert len(status["per_shard"]) == 4
        assert status["supervision"]["attempts"] == 0

    def test_durable_vs_live_progress(self, tmp_path):
        clock = _FakeClock()
        monitor = _monitor(tmp_path, clock=clock)
        _started(monitor)
        monitor.shard_started(0, attempt=1)
        monitor.shard_heartbeat(0, 1, {"done": 10, "total": 20, "rss_kb": 9000})
        # Half of one of four equal shards is live-visible but not durable.
        assert monitor.progress() == 0.0
        assert monitor.live_progress() == pytest.approx(0.125)
        clock.tick(1.0)
        monitor.shard_completed(0, {"group_count": 10}, attempt=1)
        assert monitor.progress() == pytest.approx(0.25)
        assert monitor.live_progress() == pytest.approx(0.25)

    def test_heartbeat_tracks_rss_and_never_regresses_done(self, tmp_path):
        monitor = _monitor(tmp_path, clock=_FakeClock())
        _started(monitor)
        monitor.shard_started(2, attempt=1)
        monitor.shard_heartbeat(2, 1, {"done": 8, "total": 20, "rss_kb": 5000})
        monitor.shard_heartbeat(2, 1, {"done": 6, "total": 20, "rss_kb": 4000})
        row = monitor.status()["per_shard"][2]
        assert row["progress"] == pytest.approx(0.4)  # max(8, 6) / 20
        assert row["peak_rss_kb"] == 5000

    def test_failure_kinds_map_to_counters(self, tmp_path):
        clock = _FakeClock()
        monitor = _monitor(tmp_path, clock=clock)
        _started(monitor)
        for attempt, kind in enumerate(("timeout", "stall", "death"), start=1):
            monitor.shard_started(1, attempt=attempt)
            clock.tick(0.5)
            monitor.shard_attempt_failed(1, attempt, kind, "boom", 0.5)
        counts = monitor.status()["supervision"]
        assert counts["timeouts"] == 1
        assert counts["stalls"] == 1
        assert counts["worker_deaths"] == 1
        assert counts["attempts"] == 3
        assert counts["retries"] == 2

    def test_utilization_counts_busy_and_running_time(self, tmp_path):
        clock = _FakeClock()
        monitor = _monitor(tmp_path, clock=clock, wall_clock=lambda: 0.0)
        _started(monitor, workers=2)
        monitor.shard_started(0, attempt=1)
        monitor.shard_started(1, attempt=1)
        clock.tick(4.0)
        # Two workers both busy for the whole elapsed window.
        assert monitor.utilization() == pytest.approx(1.0)
        monitor.shard_completed(0, {"group_count": 10})
        monitor.shard_completed(1, {"group_count": 10})
        clock.tick(4.0)
        # ...then idle for as long again.
        assert monitor.utilization() == pytest.approx(0.5)

    def test_stragglers_lag_behind_median(self, tmp_path):
        clock = _FakeClock()
        monitor = _monitor(tmp_path, clock=clock)
        _started(monitor, workers=4)
        for index in (0, 1, 2):
            monitor.shard_started(index, attempt=1)
        clock.tick(1.0)
        monitor.shard_completed(0, {"group_count": 10})
        monitor.shard_completed(1, {"group_count": 10})
        clock.tick(5.0)
        (lagger,) = monitor.stragglers()
        assert lagger["shard"] == 2
        assert lagger["lag_s"] == pytest.approx(5.0)
        assert "straggling" in monitor.progress_line()

    def test_speculative_attempt_span_does_not_collide(self, tmp_path):
        monitor = _monitor(tmp_path, clock=_FakeClock())
        _started(monitor)
        monitor.shard_started(0, attempt=1)
        monitor.shard_started(0, attempt=1, speculative=True)
        monitor.shard_completed(0, {"group_count": 10}, attempt=1)
        assert monitor.status()["supervision"]["speculated"] == 1
        # The primary attempt span closed; the speculative twin stayed
        # open under its own ID (exported as-if-ended-now).
        closed = [s.name for s in monitor.spans.spans()]
        assert "shard 0 attempt 1" in closed
        assert "shard 0 attempt 1 (speculative)" not in closed

    def test_events_jsonl_appends_across_monitors(self, tmp_path):
        first = _monitor(tmp_path, clock=_FakeClock())
        _started(first)
        first.shard_completed(0, {"group_count": 10})
        second = _monitor(tmp_path, clock=_FakeClock())
        _started(second)
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["event"] for e in events].count("campaign_started") == 2

    def test_unwritable_dir_degrades_not_raises(self, tmp_path):
        import shutil

        obs = tmp_path / "obs"
        monitor = _monitor(obs, clock=_FakeClock())
        _started(monitor)
        # Yank the output directory out from under the monitor (chmod
        # tricks don't bite when tests run as root): every subsequent
        # write must degrade to an io_errors count, never an exception.
        shutil.rmtree(obs)
        monitor.shard_started(0, attempt=1)
        monitor.shard_completed(0, {"group_count": 10})
        assert monitor.io_errors > 0
        assert monitor.progress() == pytest.approx(0.25)

    def test_progress_callback_failure_is_swallowed(self, tmp_path):
        def boom(line):
            raise RuntimeError("operator display died")

        monitor = _monitor(tmp_path, clock=_FakeClock(), on_progress=boom)
        _started(monitor)
        monitor.shard_completed(0, {"group_count": 10})


class TestCampaignIntegration:
    """Monitor attached to real campaigns."""

    def test_monitored_serial_campaign_is_passive(self, tmp_path):
        spec = _spec()
        bare = CampaignRunner(spec).run()
        monitored = CampaignRunner(
            spec, monitor=CampaignMonitor(str(tmp_path / "obs"), interval=0.0)
        ).run()
        assert monitored.metrics_dict() == bare.metrics_dict()
        assert monitored.telemetry == bare.telemetry

    def test_monitored_parallel_equals_serial_totals(self, tmp_path):
        spec = _spec()
        serial = CampaignRunner(
            spec, monitor=CampaignMonitor(str(tmp_path / "s"), interval=0.0)
        ).run()
        parallel = CampaignRunner(
            spec,
            workers=3,
            retry=_FAST,
            monitor=CampaignMonitor(str(tmp_path / "p"), interval=0.0),
        ).run()
        assert parallel.metrics_dict() == serial.metrics_dict()
        assert parallel.telemetry == serial.telemetry

    def test_final_status_and_summary(self, tmp_path):
        spec = _spec()
        obs = tmp_path / "obs"
        monitor = CampaignMonitor(str(obs), interval=0.0)
        CampaignRunner(spec, monitor=monitor).run()
        status = json.loads((obs / "status.json").read_text())
        assert status["state"] == "done"
        assert status["progress"] == 1.0
        assert status["shards"]["done"] == spec.shards
        assert status["final"]["completeness"] == 1.0
        assert [p["name"] for p in status["final"]["policies"]] == [
            "weekly", "staggered",
        ]
        assert status["throughput"]["drive_years"] > 0
        summary = json.loads((obs / "summary.json").read_text())
        assert summary["state"] == "done"
        assert len(summary["shard_durations_s"]) == spec.shards
        # Per-policy kernel phases were folded into the summary.
        assert {p["name"] for p in summary["phases"]} == {
            "policy weekly", "policy staggered",
        }
        trace = json.loads((obs / "trace.json").read_text())
        phases = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e.get("cat") == "phase"
        ]
        assert len(phases) == spec.shards * 2  # two policies per shard

    def test_monitor_merged_telemetry_matches_campaign(self, tmp_path):
        spec = _spec()
        monitor = CampaignMonitor(str(tmp_path / "obs"), interval=0.0)
        result = CampaignRunner(spec, monitor=monitor).run()
        assert monitor.merged_snapshot() == result.telemetry

    def test_resume_keeps_progress_monotone(self, tmp_path):
        spec = _spec()
        journal = str(tmp_path / "journal")
        obs = tmp_path / "obs"

        class _Interrupt(Exception):
            pass

        def bail(shard_index, result):
            if shard_index == 1:
                raise _Interrupt

        with pytest.raises(_Interrupt):
            CampaignRunner(
                spec,
                journal_dir=journal,
                on_shard=bail,
                monitor=CampaignMonitor(str(obs), interval=0.0),
            ).run()
        resumed = CampaignRunner(
            spec,
            journal_dir=journal,
            monitor=CampaignMonitor(str(obs), interval=0.0),
        ).run()
        assert resumed.shards_resumed >= 1
        events = [
            json.loads(line)
            for line in (obs / "events.jsonl").read_text().splitlines()
        ]
        progress = [e["progress"] for e in events if "progress" in e]
        assert progress, "no progress events logged"
        assert progress == sorted(progress)  # monotone across the kill
        assert progress[-1] == 1.0
        baseline = CampaignRunner(spec).run()
        assert resumed.metrics_dict() == baseline.metrics_dict()

    def test_degraded_campaign_reports_failed_state(self, tmp_path):
        from repro.fleet import fleet_shard_task

        def fail_shard(**params):
            if params["shard_index"] == 2:
                raise ValueError("shard rejected")
            return fleet_shard_task(**params)

        obs = tmp_path / "obs"
        result = CampaignRunner(
            _spec(),
            workers=2,
            retry=RetryPolicy(
                max_attempts=2, backoff_base=0.0, backoff_max=0.0, jitter=0.0
            ),
            task=fail_shard,
            monitor=CampaignMonitor(str(obs), interval=0.0),
        ).run()
        assert result.shards_failed == 1
        status = json.loads((obs / "status.json").read_text())
        assert status["state"] == "degraded"
        assert status["shards"]["failed"] == 1
        assert status["per_shard"][2]["state"] == "failed"
        assert status["per_shard"][2]["error"]
