"""Tests for the scrubbing framework and algorithms (repro.core)."""

import pytest

from repro.core import Scrubber, SequentialScrub, StaggeredScrub
from repro.disk import Drive, hitachi_ultrastar_15k450
from repro.disk.models import DriveSpec
from repro.sched import BlockDevice, CFQScheduler, NoopScheduler, PriorityClass
from repro.sim import RandomStreams, Simulation
from repro.workloads import SequentialReader


def tiny_spec(**overrides) -> DriveSpec:
    """A minuscule drive so full passes finish quickly in tests."""
    spec = hitachi_ultrastar_15k450().with_overrides(
        cylinders=30, outer_spt=64, inner_spt=64, num_zones=1, heads=2,
        average_seek=1e-3, full_stroke_seek=2e-3,
    )
    return spec.with_overrides(**overrides)


def make_stack(spec=None, scheduler=None):
    sim = Simulation()
    drive = Drive(spec or tiny_spec(), cache_enabled=False)
    if scheduler is None:  # note: an *empty* scheduler is falsy (__len__)
        scheduler = NoopScheduler()
    device = BlockDevice(sim, drive, scheduler)
    return sim, device


class TestSequentialScrubOrder:
    def test_covers_disk_in_order(self):
        algorithm = SequentialScrub()
        algorithm.reset(100, 32)
        extents = []
        while True:
            extent = algorithm.next_extent()
            if extent is None:
                break
            extents.append(extent)
        assert extents == [(0, 32), (32, 32), (64, 32), (96, 4)]

    def test_reset_restarts(self):
        algorithm = SequentialScrub()
        algorithm.reset(64, 32)
        algorithm.next_extent()
        algorithm.reset(64, 32)
        assert algorithm.next_extent() == (0, 32)

    def test_invalid_reset(self):
        with pytest.raises(ValueError):
            SequentialScrub().reset(0, 32)


class TestStaggeredScrubOrder:
    def test_one_region_equals_sequential(self):
        staggered = StaggeredScrub(regions=1)
        sequential = SequentialScrub()
        staggered.reset(1000, 64)
        sequential.reset(1000, 64)
        while True:
            a, b = staggered.next_extent(), sequential.next_extent()
            assert a == b
            if a is None:
                break

    def test_round_robin_across_regions(self):
        algorithm = StaggeredScrub(regions=4)
        algorithm.reset(400, 10)
        first_round = [algorithm.next_extent() for _ in range(4)]
        assert first_round == [(0, 10), (100, 10), (200, 10), (300, 10)]
        second_round = [algorithm.next_extent() for _ in range(4)]
        assert second_round == [(10, 10), (110, 10), (210, 10), (310, 10)]

    @pytest.mark.parametrize("total,step,regions", [
        (1000, 7, 3),
        (1000, 64, 128),
        (999, 10, 10),
        (17, 5, 4),
        (100, 100, 7),
    ])
    def test_exact_coverage(self, total, step, regions):
        algorithm = StaggeredScrub(regions=regions)
        algorithm.reset(total, step)
        seen = set()
        while True:
            extent = algorithm.next_extent()
            if extent is None:
                break
            lbn, sectors = extent
            for sector in range(lbn, lbn + sectors):
                assert sector not in seen
                seen.add(sector)
        assert seen == set(range(total))

    def test_invalid_regions(self):
        with pytest.raises(ValueError):
            StaggeredScrub(regions=0)


class TestScrubberFramework:
    def test_full_pass_counts(self):
        sim, device = make_stack()
        scrubber = Scrubber(
            sim, device, SequentialScrub(), request_bytes=64 * 1024,
            max_passes=1,
        )
        process = scrubber.start()
        sim.run(until=process)
        assert scrubber.passes_completed == 1
        assert scrubber.bytes_scrubbed == device.drive.capacity_bytes
        total = device.drive.total_sectors
        expected = -(-total // 128)
        assert scrubber.requests_issued == expected

    def test_multiple_passes(self):
        sim, device = make_stack()
        scrubber = Scrubber(
            sim, device, StaggeredScrub(regions=4), max_passes=3,
        )
        process = scrubber.start()
        sim.run(until=process)
        assert scrubber.passes_completed == 3
        assert scrubber.bytes_scrubbed == 3 * device.drive.capacity_bytes

    def test_stop_interrupts(self):
        sim, device = make_stack()
        scrubber = Scrubber(sim, device, SequentialScrub())
        scrubber.start()
        sim.run(until=0.05)
        scrubber.stop()
        sim.run(until=0.1)
        issued = scrubber.requests_issued
        sim.run(until=0.2)
        assert scrubber.requests_issued == issued

    def test_gap_delay_slows_scrubber(self):
        rates = {}
        for delay in (0.0, 0.016):
            sim, device = make_stack()
            scrubber = Scrubber(
                sim, device, SequentialScrub(), delay=delay, delay_mode="gap",
            )
            scrubber.start()
            sim.run(until=2.0)
            rates[delay] = scrubber.bytes_scrubbed
        assert rates[0.016] < rates[0.0] / 2

    def test_interval_mode_reaches_size_over_delay(self):
        """The paper's 3.9 MB/s = 64 KB / 16 ms user-level result."""
        sim, device = make_stack(spec=hitachi_ultrastar_15k450())
        scrubber = Scrubber(
            sim, device, SequentialScrub(), request_bytes=64 * 1024,
            delay=0.016, delay_mode="interval", soft_barrier=True,
        )
        scrubber.start()
        sim.run(until=10.0)
        mbps = scrubber.throughput(10.0) / 1e6
        assert mbps == pytest.approx(65536 / 0.016 / 1e6, rel=0.05)

    def test_gap_mode_pays_service_time(self):
        """Kernel-style delay: size / (delay + service) ~= 3 MB/s."""
        sim, device = make_stack(spec=hitachi_ultrastar_15k450())
        scrubber = Scrubber(
            sim, device, SequentialScrub(), request_bytes=64 * 1024,
            delay=0.016, delay_mode="gap",
        )
        scrubber.start()
        sim.run(until=10.0)
        mbps = scrubber.throughput(10.0) / 1e6
        assert 2.5 < mbps < 3.6

    def test_scrub_requests_tagged_and_classed(self):
        sim, device = make_stack()
        scrubber = Scrubber(
            sim, device, SequentialScrub(), priority=PriorityClass.IDLE,
            max_passes=1,
        )
        process = scrubber.start()
        sim.run(until=process)
        scrub_requests = device.log.requests("scrubber")
        assert scrub_requests
        assert all(r.priority is PriorityClass.IDLE for r in scrub_requests)
        from repro.disk.commands import Opcode

        assert all(
            r.command.opcode is Opcode.VERIFY for r in scrub_requests
        )

    def test_invalid_parameters(self):
        sim, device = make_stack()
        with pytest.raises(ValueError):
            Scrubber(sim, device, SequentialScrub(), request_bytes=1000)
        with pytest.raises(ValueError):
            Scrubber(sim, device, SequentialScrub(), delay=-1)
        with pytest.raises(ValueError):
            Scrubber(sim, device, SequentialScrub(), delay_mode="sometimes")
        with pytest.raises(ValueError):
            Scrubber(sim, device, SequentialScrub(), max_passes=0)

    def test_double_start_rejected(self):
        sim, device = make_stack()
        scrubber = Scrubber(sim, device, SequentialScrub())
        scrubber.start()
        with pytest.raises(RuntimeError):
            scrubber.start()


class TestScrubberWithForeground:
    def test_idle_class_protects_foreground(self):
        """Foreground throughput with an Idle-class scrubber stays close
        to the no-scrubber baseline (the Fig. 6 story for CFQ/gated)."""
        horizon = 20.0

        def run(with_scrubber):
            sim = Simulation()
            device = BlockDevice(
                sim,
                Drive(hitachi_ultrastar_15k450(), cache_enabled=False),
                CFQScheduler(idle_gate=0.010),
            )
            streams = RandomStreams(seed=3)
            SequentialReader(sim, device, streams.get("fg")).start()
            if with_scrubber:
                Scrubber(
                    sim, device, SequentialScrub(),
                    priority=PriorityClass.IDLE,
                ).start()
            sim.run(until=horizon)
            return device.log.bytes_completed("foreground")

        baseline = run(False)
        with_scrub = run(True)
        assert with_scrub > 0.7 * baseline

    def test_same_priority_scrubber_hurts_foreground(self):
        horizon = 20.0

        def run(priority):
            sim = Simulation()
            device = BlockDevice(
                sim,
                Drive(hitachi_ultrastar_15k450(), cache_enabled=False),
                CFQScheduler(idle_gate=0.010),
            )
            streams = RandomStreams(seed=3)
            SequentialReader(sim, device, streams.get("fg")).start()
            Scrubber(
                sim, device, SequentialScrub(), priority=priority,
            ).start()
            sim.run(until=horizon)
            return device.log.bytes_completed("foreground")

        idle = run(PriorityClass.IDLE)
        default = run(PriorityClass.BE)
        assert default < 0.8 * idle
