"""Tests for the full-stack Waiting scrubber (repro.core.policies.device)
and the replay helper (repro.analysis.replay_cdf)."""

import numpy as np
import pytest

from repro.analysis.impact import ScrubberSetup
from repro.analysis.replay_cdf import replay_with_scrubber
from repro.core import SequentialScrub
from repro.core.policies import WaitingScrubber
from repro.disk import DiskCommand, Drive, hitachi_ultrastar_15k450
from repro.sched import BlockDevice, IORequest, NoopScheduler
from repro.sim import Simulation
from repro.traces import Trace


def make_stack():
    sim = Simulation()
    device = BlockDevice(
        sim,
        Drive(hitachi_ultrastar_15k450(), cache_enabled=False),
        NoopScheduler(),
    )
    return sim, device


def make_trace(times, lbn_step=1000, sectors=8):
    times = np.asarray(times, dtype=float)
    n = len(times)
    return Trace(
        times,
        np.arange(n, dtype=np.int64) * lbn_step,
        np.full(n, sectors, dtype=np.int64),
        np.zeros(n, dtype=bool),
        name="unit",
    )


class TestWaitingScrubber:
    def test_fires_after_threshold_on_idle_disk(self):
        sim, device = make_stack()
        scrubber = WaitingScrubber(
            sim, device, SequentialScrub(), threshold=0.5
        )
        scrubber.start()
        sim.run(until=0.4)
        assert scrubber.requests_issued == 0
        sim.run(until=1.0)
        assert scrubber.requests_issued > 0
        first = device.log.requests("scrubber")[0]
        assert first.submit_time == pytest.approx(0.5)

    def test_waits_out_foreground_activity(self):
        sim, device = make_stack()
        scrubber = WaitingScrubber(
            sim, device, SequentialScrub(), threshold=0.2
        )
        scrubber.start()

        def foreground(sim, device):
            for i in range(5):
                done = device.submit(IORequest(DiskCommand.read(i * 100, 8)))
                yield done
                yield sim.timeout(0.1)  # gaps < threshold: no scrubbing

        sim.process(foreground(sim, device))
        sim.run(until=0.55)
        assert scrubber.requests_issued == 0

    def test_stops_firing_on_foreground_arrival_and_counts_collision(self):
        sim, device = make_stack()
        scrubber = WaitingScrubber(
            sim, device, SequentialScrub(), threshold=0.05,
            request_bytes=1024 * 1024,
        )
        scrubber.start()

        def late_foreground(sim, device):
            yield sim.timeout(0.5)
            yield device.submit(IORequest(DiskCommand.read(0, 8)))

        sim.process(late_foreground(sim, device))
        # Let the in-flight verify and the foreground request finish.
        sim.run(until=0.7)
        assert scrubber.collisions >= 1
        fg = device.log.requests("foreground")
        assert fg, "foreground request should have completed"
        # The foreground request was delayed by the in-flight verify.
        assert fg[0].wait_time > 0

    def test_resumes_after_interruption(self):
        sim, device = make_stack()
        scrubber = WaitingScrubber(
            sim, device, SequentialScrub(), threshold=0.05
        )
        scrubber.start()

        def one_shot(sim, device):
            yield sim.timeout(0.3)
            yield device.submit(IORequest(DiskCommand.read(0, 8)))

        sim.process(one_shot(sim, device))
        sim.run(until=0.3)
        before = scrubber.requests_issued
        sim.run(until=1.0)
        assert scrubber.requests_issued > before

    def test_stop_detaches(self):
        sim, device = make_stack()
        scrubber = WaitingScrubber(sim, device, SequentialScrub(), threshold=0.01)
        scrubber.start()
        sim.run(until=0.2)
        scrubber.stop()
        count = scrubber.requests_issued
        sim.run(until=0.5)
        assert scrubber.requests_issued == count
        assert scrubber._observe not in device.observers

    def test_double_start_rejected(self):
        sim, device = make_stack()
        scrubber = WaitingScrubber(sim, device, SequentialScrub())
        scrubber.start()
        with pytest.raises(RuntimeError):
            scrubber.start()

    def test_validation(self):
        sim, device = make_stack()
        with pytest.raises(ValueError):
            WaitingScrubber(sim, device, SequentialScrub(), threshold=-1)
        with pytest.raises(ValueError):
            WaitingScrubber(sim, device, SequentialScrub(), request_bytes=100)

    def test_throughput_validation(self):
        sim, device = make_stack()
        scrubber = WaitingScrubber(sim, device, SequentialScrub())
        with pytest.raises(ValueError):
            scrubber.throughput(0)


class TestReplayWithScrubber:
    def _sparse_trace(self):
        # Requests every 200 ms: plenty of idle for scrubbers.
        return make_trace(np.arange(50) * 0.2)

    def test_bare_replay(self):
        trace = self._sparse_trace()
        result = replay_with_scrubber(
            trace, hitachi_ultrastar_15k450(), horizon=trace.duration + 1.0
        )
        assert result.fg_requests == 50
        assert result.scrub_bytes == 0

    def test_cfq_scrubber_replay(self):
        result = replay_with_scrubber(
            self._sparse_trace(),
            hitachi_ultrastar_15k450(),
            scrubber=ScrubberSetup(),
        )
        assert result.scrub_bytes > 0
        assert result.scrub_requests_per_sec > 0

    def test_waiting_scrubber_replay(self):
        result = replay_with_scrubber(
            self._sparse_trace(),
            hitachi_ultrastar_15k450(),
            waiting={"threshold": 0.05, "request_bytes": 65536},
        )
        assert result.scrub_bytes > 0

    def test_slowdown_versus_baseline(self):
        trace = self._sparse_trace()
        baseline = replay_with_scrubber(trace, hitachi_ultrastar_15k450())
        loaded = replay_with_scrubber(
            trace, hitachi_ultrastar_15k450(),
            scrubber=ScrubberSetup(),
            idle_gate=0.0,
        )
        slowdown = loaded.mean_slowdown_vs(baseline)
        assert slowdown >= 0

    def test_both_scrubbers_rejected(self):
        with pytest.raises(ValueError):
            replay_with_scrubber(
                self._sparse_trace(),
                hitachi_ultrastar_15k450(),
                scrubber=ScrubberSetup(),
                waiting={"threshold": 0.1},
            )

    def test_empty_trace_rejected(self):
        empty = make_trace([])
        with pytest.raises(ValueError):
            replay_with_scrubber(empty, hitachi_ultrastar_15k450())
