"""Concurrency and determinism: dedup under racing clients, quotas,
fair-share ordering, and cancellation hygiene.

The ordering assertions use the queue's monotone ``seq`` /
``started_seq`` / ``finished_seq`` stamps rather than wall-clock
sampling, so they are total-order facts, not timing guesses.
"""

import json
import threading
import time

import pytest

from repro.service import CampaignService, JobQueue, ServiceClient

pytestmark = pytest.mark.service


def _spec(groups=48, shards=4, seed=13):
    return {
        "fleet": {
            "groups": groups,
            "disks_per_group": 4,
            "mttr_hours": 36.0,
            "spare_delay_hours": 6.0,
            "classes": [{"mttf_hours": 2.5e4, "lse_burst_rate_per_hour": 3e-4}],
        },
        "policies": [{"name": "weekly", "latent_window_hours": 84.0}],
        "mission_years": 6.0,
        "seed": seed,
        "shards": shards,
    }


def test_racing_clients_one_job_one_execution(tmp_path):
    """Eight threads submit the same spec; exactly one job executes."""
    spec = _spec(seed=31)
    results = []
    with CampaignService(tmp_path, port=0, status_interval=0.0) as svc:

        def submit(name):
            client = ServiceClient(svc.url, client=name)
            results.append(client.submit(spec))

        threads = [
            threading.Thread(target=submit, args=(f"client-{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        created = [p for status, p in results if status == 201]
        duplicates = [p for status, p in results if status == 200]
        assert len(created) == 1
        assert len(duplicates) == 7
        ids = {p["job"]["id"] for _, p in results}
        assert len(ids) == 1
        final = ServiceClient(svc.url).wait(ids.pop(), timeout=60)
    assert final["state"] == "done"
    assert final["attempts"] == 1  # dedup meant one execution, ever


def test_distinct_specs_all_complete(tmp_path):
    """Six different campaigns from three clients all run to done."""
    with CampaignService(
        tmp_path, port=0, max_jobs=2, status_interval=0.0
    ) as svc:
        ids = []
        for i in range(6):
            client = ServiceClient(svc.url, client=f"c{i % 3}")
            status, payload = client.submit(_spec(seed=40 + i))
            assert status == 201
            ids.append(payload["job"]["id"])
        assert len(set(ids)) == 6
        finals = [ServiceClient(svc.url).wait(j, timeout=120) for j in ids]
    assert all(f["state"] == "done" for f in finals)
    # Every execution is journalled independently.
    assert all(f["result"]["completeness"] == 1.0 for f in finals)


def test_client_quota_serializes_a_client(tmp_path):
    """quota=1: a client's second job cannot start before its first ends."""
    with CampaignService(
        tmp_path, port=0, max_jobs=4, client_quota=1, status_interval=0.0
    ) as svc:
        client = ServiceClient(svc.url, client="greedy")
        _, p1 = client.submit(_spec(seed=50))
        _, p2 = client.submit(_spec(seed=51))
        first = client.wait(p1["job"]["id"], timeout=60)
        second = client.wait(p2["job"]["id"], timeout=60)
    assert first["state"] == second["state"] == "done"
    earlier, later = sorted((first, second), key=lambda j: j["started_seq"])
    assert earlier["finished_seq"] < later["started_seq"]


def test_fair_share_lets_small_client_jump_backlog(tmp_path):
    """B's single job starts before A's backlog drains.

    Fair-share is instantaneous: the scheduler claims for the client
    with the fewest *running* jobs.  Both slots fill with alice's
    long campaigns; when the first slot frees, bob (0 running) must
    beat alice's queued third job even though it was submitted first.
    """
    with CampaignService(
        tmp_path, port=0, max_jobs=2, status_interval=0.0
    ) as svc:
        alice = ServiceClient(svc.url, client="alice")
        bob = ServiceClient(svc.url, client="bob")
        a_ids = [
            alice.submit(_spec(seed=60 + i, groups=4_800, shards=8))[1]["job"]["id"]
            for i in range(3)
        ]
        b_id = bob.submit(_spec(seed=70, groups=48, shards=4))[1]["job"]["id"]
        finals = {
            job_id: ServiceClient(svc.url).wait(job_id, timeout=120)
            for job_id in a_ids + [b_id]
        }
    assert all(f["state"] == "done" for f in finals.values())
    assert finals[b_id]["started_seq"] < finals[a_ids[2]]["started_seq"]


def test_cancel_running_job_keeps_journal_consistent(tmp_path):
    """DELETE a running job: state cancelled, journal resumable, queue clean."""
    spec = _spec(groups=12_000, shards=16, seed=80)
    data_dir = tmp_path / "data"
    with CampaignService(data_dir, port=0, status_interval=0.0) as svc:
        client = ServiceClient(svc.url, client="cx")
        _, payload = client.submit(spec)
        job_id = payload["job"]["id"]
        # Wait until it is actually running, then cancel.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(job_id)[1]["job"]["state"] == "running":
                break
            time.sleep(0.01)
        status, cancel_payload = client.cancel(job_id)
        assert status == 200
        assert cancel_payload["job"]["cancel_requested"]
        final = client.wait(job_id, timeout=60)
        assert final["state"] == "cancelled"
        counts = svc.queue.counts()
        assert counts["running"] == 0  # no orphaned running entries

    # A reopened queue agrees (the record on disk is terminal)...
    queue = JobQueue(data_dir)
    assert queue.recovered == ()
    assert queue.get(job_id).state == "cancelled"
    # ...and resubmission resumes from the cancelled job's checkpoints.
    with CampaignService(data_dir, port=0, status_interval=0.0) as svc2:
        client2 = ServiceClient(svc2.url, client="cx")
        status, payload = client2.submit(spec)
        assert status == 200 and payload["job"]["state"] == "queued"
        final = client2.wait(job_id, timeout=120)
    assert final["state"] == "done"
    if final["result"]["shards_resumed"]:
        events_path = data_dir / "campaigns" / job_id / "obs" / "events.jsonl"
        completed = []
        with open(events_path, encoding="utf-8") as handle:
            for line in handle:
                event = json.loads(line)
                if event["event"] == "shard_completed":
                    completed.append(event["shard"])
        assert len(completed) == len(set(completed))  # nothing redone


def test_cancel_queued_job_never_runs(tmp_path):
    """Cancelling a queued job prevents any execution at all."""
    with CampaignService(
        tmp_path, port=0, max_jobs=1, status_interval=0.0
    ) as svc:
        client = ServiceClient(svc.url, client="q")
        # Occupy the single slot, then queue and immediately cancel.
        _, p1 = client.submit(_spec(groups=4_800, shards=8, seed=90))
        _, p2 = client.submit(_spec(seed=91))
        status, cancelled = client.cancel(p2["job"]["id"])
        assert status == 200
        final2 = client.wait(p2["job"]["id"], timeout=30)
        client.wait(p1["job"]["id"], timeout=120)
    assert final2["state"] == "cancelled"
    assert final2["attempts"] == 0  # never claimed
    journal = tmp_path / "campaigns" / p2["job"]["id"]
    assert not journal.exists()  # no execution artefacts either
