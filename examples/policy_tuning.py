#!/usr/bin/env python
"""Tune scrub scheduling for a workload, as in Section V of the paper.

Pipeline, exactly as the paper prescribes (Section V-D): take a short
trace capturing the workload, extract its idle intervals, compare the
candidate policies (Fig. 14), then let the optimizer pick the scrub
request size and wait threshold that maximise throughput under an
administrator-given mean-slowdown goal (Table III) — and validate the
chosen parameters with the full-stack Waiting scrubber on a replay.

Run:  python examples/policy_tuning.py [trace-name]
"""

import sys

import numpy as np

from repro.analysis import evaluate_policy, simulate_fixed_waiting
from repro.analysis.replay_cdf import replay_with_scrubber
from repro.analysis.service_model import ScrubServiceModel
from repro.core.optimizer import ScrubParameterOptimizer
from repro.core.policies import ARPolicy, OraclePolicy, WaitingPolicy
from repro.disk import hitachi_ultrastar_15k450
from repro.traces import generate_trace
from repro.traces.catalog import trace_idle_intervals


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "MSRusr2"
    spec = hitachi_ultrastar_15k450()

    print(f"Profiling workload {name}...")
    trace = generate_trace(name, duration=4 * 3600.0)
    _, durations = trace_idle_intervals(name, trace)
    total_requests = len(trace)
    print(f"  {total_requests:,} requests, {len(durations):,} idle intervals\n")

    # -- Fig. 14 in miniature: who uses idle time best per collision? --
    print("Policy comparison (utilisation at a ~3% collision rate):")
    waiting = WaitingPolicy(float(np.percentile(durations, 90)))
    w = evaluate_policy(waiting, durations, total_requests)
    ar_preds = ARPolicy(0).predictions(durations)
    ar = evaluate_policy(
        ARPolicy(float(np.percentile(ar_preds, 80))), durations, total_requests
    )
    oracle = evaluate_policy(
        OraclePolicy(w.collisions / len(durations)), durations, total_requests
    )
    for point in (w, ar, oracle):
        print(
            f"  {point.policy:<16} collisions {point.collision_rate:6.3%}  "
            f"idle time used {point.utilisation:6.1%}"
        )

    # -- Table III in miniature: optimize (size, threshold) per goal --
    print("\nMeasuring scrub service times on the drive model...")
    service_model = ScrubServiceModel.from_spec(spec)
    optimizer = ScrubParameterOptimizer(
        durations, total_requests, trace.duration, service_model
    )
    print("Optimal parameters per mean-slowdown goal:")
    chosen = None
    for goal_ms in (1.0, 2.0, 4.0):
        best = optimizer.optimize(goal_ms / 1e3)
        chosen = chosen or best
        print(
            f"  goal {goal_ms:4.1f} ms -> wait {best.threshold * 1e3:7.1f} ms, "
            f"requests {best.request_bytes // 1024:5d} KB, "
            f"scrub {best.throughput_mbps:6.1f} MB/s"
        )
    cfq_like = simulate_fixed_waiting(
        durations, 0.010, 65536, service_model, total_requests, trace.duration
    )
    print(
        f"  CFQ baseline (10 ms gate, 64 KB): "
        f"slowdown {cfq_like.mean_slowdown * 1e3:.2f} ms, "
        f"scrub {cfq_like.throughput_mbps:6.1f} MB/s"
    )

    # -- validate the 1 ms parameters on the full stack --
    print("\nValidating the 1 ms parameters with a full-stack replay...")
    window = trace.window(0.0, 600.0)
    baseline = replay_with_scrubber(window, spec, horizon=600.0)
    validated = replay_with_scrubber(
        window,
        spec,
        waiting={
            "threshold": chosen.threshold,
            "request_bytes": chosen.request_bytes,
        },
        horizon=600.0,
    )
    print(
        f"  measured slowdown {validated.mean_slowdown_vs(baseline) * 1e3:.2f} ms "
        f"(analytic goal 1.00 ms), scrubbed {validated.scrub_mbps:.1f} MB/s"
    )
    print(
        "  (full-stack slowdown exceeds the analytic goal because a"
        "\n   collision also delays the burst of requests queued behind"
        "\n   the first one — tighten the goal to compensate)"
    )


if __name__ == "__main__":
    main()
