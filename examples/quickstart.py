#!/usr/bin/env python
"""Quickstart: scrub a simulated disk while a foreground workload runs.

Builds the full stack — a Hitachi Ultrastar 15K450 model behind a
CFQ-like scheduler — runs the paper's sequential synthetic workload,
and compares three configurations: no scrubber, a back-to-back
Idle-class scrubber, and a rate-limited same-priority scrubber.

Run:  python examples/quickstart.py
"""

from repro import (
    CFQScheduler,
    BlockDevice,
    Drive,
    Scrubber,
    SequentialScrub,
    Simulation,
    StaggeredScrub,
    hitachi_ultrastar_15k450,
)
from repro.sched.request import PriorityClass
from repro.sim import RandomStreams
from repro.workloads import SequentialReader

HORIZON = 30.0  # simulated seconds


def run(label, scrubber_config):
    sim = Simulation()
    # The paper's impact experiments run with the on-disk cache off so
    # every access exercises the mechanism.
    drive = Drive(hitachi_ultrastar_15k450(), cache_enabled=False)
    device = BlockDevice(sim, drive, CFQScheduler(idle_gate=0.010))

    workload = SequentialReader(
        sim, device, RandomStreams(seed=7).get("foreground")
    )
    workload.start()

    scrubber = None
    if scrubber_config is not None:
        scrubber = Scrubber(sim, device, **scrubber_config)
        scrubber.start()

    sim.run(until=HORIZON)
    fg = device.log.bytes_completed("foreground") / HORIZON / 1e6
    scrub = scrubber.bytes_scrubbed / HORIZON / 1e6 if scrubber else 0.0
    mean_ms = device.log.response_times("foreground").mean() * 1e3
    print(
        f"{label:<38} foreground {fg:6.2f} MB/s   "
        f"scrubber {scrub:6.2f} MB/s   mean response {mean_ms:6.2f} ms"
    )


def main():
    print(f"Simulating {HORIZON:.0f} s of a sequential foreground workload\n")
    run("no scrubber", None)
    run(
        "sequential scrubber, Idle class",
        dict(algorithm=SequentialScrub(), priority=PriorityClass.IDLE),
    )
    run(
        "staggered scrubber (128), Idle class",
        dict(algorithm=StaggeredScrub(128), priority=PriorityClass.IDLE),
    )
    run(
        "sequential, same priority, 16ms gaps",
        dict(
            algorithm=SequentialScrub(),
            priority=PriorityClass.BE,
            delay=0.016,
        ),
    )
    print(
        "\nThe Idle class protects the foreground; fixed delays protect it"
        "\ntoo but cripple the scrubber — the paper's motivation for the"
        "\nWaiting policy (see examples/policy_tuning.py)."
    )


if __name__ == "__main__":
    main()
