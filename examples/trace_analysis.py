#!/usr/bin/env python
"""Statistical workload analysis, as in Section V-A of the paper.

Generates synthetic traces calibrated to the paper's SNIA disks and
runs the full analysis pipeline: idle-interval statistics (Table II),
ANOVA period detection (Fig. 9), autocorrelation, idle-time tail
concentration (Fig. 10) and remaining-idle-time curves (Fig. 11/13).

Run:  python examples/trace_analysis.py [trace-name ...]
"""

import sys

import numpy as np

from repro.stats import (
    anova_period,
    expected_remaining,
    has_significant_autocorrelation,
    summarize_idle,
    usable_fraction,
)
from repro.stats.tails import idle_share_of_largest
from repro.traces import CATALOG, generate_trace
from repro.traces.catalog import trace_idle_intervals

DEFAULT_TRACES = ["MSRsrc11", "HPc6t8d0", "TPCdisk66"]


def analyse(name: str) -> None:
    spec = CATALOG[name]
    is_tpcc = spec.profile.memoryless
    duration = 1200.0 if is_tpcc else 6 * 3600.0
    trace = generate_trace(name, duration=duration)
    _, durations = trace_idle_intervals(name, trace)
    stats = summarize_idle(durations, span=trace.duration)

    print(f"=== {name} ({spec.collection}: {spec.description}) ===")
    print(f"  requests: {len(trace):,} over {trace.duration / 3600:.1f} h")
    print(
        f"  idle intervals: {stats.count:,}  mean {stats.mean * 1e3:.2f} ms  "
        f"CoV {stats.cov:.1f}"
        + (
            f"  (paper: mean {spec.paper_idle_mean * 1e3:.1f} ms, "
            f"CoV {spec.paper_idle_cov:.1f})"
            if spec.paper_idle_mean
            else ""
        )
    )
    print(
        "  memoryless-like:"
        f" {stats.is_memoryless_like}   autocorrelated:"
        f" {has_significant_autocorrelation(durations)}"
    )
    print(
        f"  idle share of the 15% largest intervals:"
        f" {idle_share_of_largest(durations, 0.15):.0%}"
    )

    taus = np.array([0.001, 0.01, 0.1, 1.0])
    remaining = expected_remaining(durations, taus)
    usable = usable_fraction(durations, taus)
    for tau, rem, use in zip(taus, remaining, usable):
        rem_txt = f"{rem:8.3f} s" if np.isfinite(rem) else "     n/a"
        print(
            f"  after {tau * 1e3:7.1f} ms idle: expect {rem_txt} more,"
            f" {use:.0%} of idle time still usable"
        )

    if not is_tpcc:
        long_trace = generate_trace(name, duration=4 * 86400.0, rate_scale=0.05)
        period = anova_period(long_trace.requests_per_bin(3600.0), max_period=36)
        label = f"{period.period} h" if period.period > 1 else "none"
        print(f"  ANOVA period: {label} (F={period.f_statistic:.1f})")
    print()


def main() -> None:
    names = sys.argv[1:] or DEFAULT_TRACES
    for name in names:
        if name not in CATALOG:
            print(f"unknown trace {name!r}; known: {', '.join(sorted(CATALOG))}")
            return
        analyse(name)
    print(
        "Heavy tails + decreasing hazard rates are why the Waiting policy"
        "\nworks; the TPC-C trace is the memoryless counter-example."
    )


if __name__ == "__main__":
    main()
