#!/usr/bin/env python
"""Reliability view: how scrub order affects error detection latency.

The point of scrubbing is catching latent sector errors (LSEs) before
a RAID rebuild trips over them.  This example closes the loop the
paper motivates with Oprea & Juels' staggered scrubbing: it measures
scrub throughput for each order on the drive model, injects bursty
LSEs, and reports the Mean Latent Error Time (MLET) — showing that
staggered scrubbing detects bursts sooner *without* costing
throughput once the region count is high enough (Figs. 5a/5b + the
MLET motivation in one experiment).

Run:  python examples/scrub_campaign.py
"""

import numpy as np

from repro.analysis.throughput import standalone_scrub_throughput
from repro.core import SequentialScrub, StaggeredScrub
from repro.core.mlet import (
    generate_bursts,
    mean_latent_error_time,
    sector_visit_times,
)
from repro.disk import hitachi_ultrastar_15k450

#: Scaled-down disk for the MLET computation (keeps arrays small while
#: preserving the geometry of bursts vs regions).
TOTAL_SECTORS = 1_000_000
REQUEST_SECTORS = 128  # 64 KB


def main() -> None:
    spec = hitachi_ultrastar_15k450()
    rng = np.random.default_rng(2012)
    bursts = generate_bursts(
        rng,
        TOTAL_SECTORS,
        count=5000,
        horizon=1e9,
        mean_length=4000.0,  # LSEs cluster: bursts span many sectors
        max_length=40_000,
    )

    print(f"{'scrub order':<22}{'throughput':>12}{'pass time':>12}{'MLET':>10}")
    rows = [("sequential", SequentialScrub())] + [
        (f"staggered R={r}", StaggeredScrub(r)) for r in (4, 16, 64, 128, 256)
    ]
    sequential_mlet = None
    for label, algorithm in rows:
        rate = standalone_scrub_throughput(
            spec, type(algorithm)() if label == "sequential"
            else StaggeredScrub(algorithm.regions),
            request_bytes=REQUEST_SECTORS * 512,
            horizon=8.0,
        )
        visits, pass_duration = sector_visit_times(
            algorithm, TOTAL_SECTORS, REQUEST_SECTORS, rate
        )
        mlet = mean_latent_error_time(visits, pass_duration, bursts)
        if sequential_mlet is None:
            sequential_mlet = mlet
        print(
            f"{label:<22}{rate / 1e6:>9.1f} MB/s{pass_duration:>10.1f} s"
            f"{mlet / sequential_mlet:>9.2f}x"
        )

    print(
        "\nMLET shown relative to sequential scrubbing. Staggering both"
        "\nraises throughput (missed-rotation effect, Fig. 5) and cuts the"
        "\ntime bursty errors stay latent — the paper's case for making"
        "\nstaggered scrubbing practical."
    )


if __name__ == "__main__":
    main()
