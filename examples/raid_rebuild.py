#!/usr/bin/env python
"""Why scrub at all: a RAID-5 rebuild with and without scrubbing.

Builds a 3-disk RAID-5 array of simulated drives, seeds latent sector
errors on the members, optionally lets a scrubber repair them, then
fails a disk and rebuilds — counting the unrecoverable sectors the
rebuild encounters.  This is the data-loss mechanism from the paper's
introduction, demonstrated on the full stack.

Run:  python examples/raid_rebuild.py
"""

import numpy as np

from repro.core import Scrubber, SequentialScrub
from repro.disk import Drive, hitachi_ultrastar_15k450
from repro.raid import RaidArray, RaidGeometry, RaidLevel
from repro.sched import BlockDevice, NoopScheduler
from repro.sim import Simulation

CHUNK_SECTORS = 128  # 64 KB stripe unit
DISKS = 3
ERROR_BURSTS = 12


def tiny_drive():
    """A scaled-down member disk so full scrub passes finish quickly."""
    return Drive(
        hitachi_ultrastar_15k450().with_overrides(
            cylinders=600, outer_spt=256, inner_spt=256, num_zones=1, heads=2,
            average_seek=1.5e-3, full_stroke_seek=3e-3,
        ),
        cache_enabled=False,
    )


def build_array(sim):
    devices = [
        BlockDevice(sim, tiny_drive(), NoopScheduler()) for _ in range(DISKS)
    ]
    disk_sectors = devices[0].drive.total_sectors
    disk_sectors -= disk_sectors % CHUNK_SECTORS
    geometry = RaidGeometry(RaidLevel.RAID5, DISKS, CHUNK_SECTORS, disk_sectors)
    return RaidArray(sim, devices, geometry)


def inject_errors(array, rng):
    """Bursty LSEs on the surviving members (disks 0 and 2)."""
    for _ in range(ERROR_BURSTS):
        disk = int(rng.choice([0, 2]))
        start = int(rng.integers(0, array.geometry.disk_sectors - 64))
        array.errors.inject(disk, start, int(rng.integers(1, 32)))


def run(scrub_first):
    sim = Simulation()
    array = build_array(sim)
    inject_errors(array, np.random.default_rng(42))
    injected = array.errors.bad_count()

    if scrub_first:
        for disk in (0, 2):
            scrubber = Scrubber(
                sim, array.devices[disk], SequentialScrub(),
                request_bytes=64 * 1024, max_passes=1,
            )
            process = scrubber.start()
            sim.run(until=process)

    repaired = array.errors_repaired
    array.fail_disk(1)
    done = array.rebuild(request_sectors=1024)
    lost = sim.run(until=done)
    label = "with a scrub pass first" if scrub_first else "without scrubbing"
    print(
        f"{label:<26}: {injected} latent sectors injected, "
        f"{repaired} repaired by scrubbing, "
        f"{lost} unrecoverable during rebuild"
    )
    return lost


def main():
    print(f"RAID-5, {DISKS} disks, 64 KB chunks; disk 1 fails and rebuilds\n")
    lost_unscrubbed = run(scrub_first=False)
    lost_scrubbed = run(scrub_first=True)
    print(
        "\nEvery latent error a scrub pass repairs is a sector the rebuild"
        "\ncannot lose — the paper's case for scrubbing, and for doing it"
        "\nwith minimal foreground impact (see examples/policy_tuning.py)."
    )
    assert lost_scrubbed <= lost_unscrubbed


if __name__ == "__main__":
    main()
