"""Service smoke: submit, dedup, SIGKILL-and-restart, cancel, stream.

``make serve-smoke`` runs this end to end.  Five acts, mirroring the
PR 10 acceptance criteria:

1. **Contract** — start a real ``repro serve`` subprocess on an
   ephemeral port; health, 404/400 error bodies, submit 201.
2. **Bit-identity** — the POST-submitted campaign's metrics must
   equal a direct in-process :class:`CampaignRunner` run of the same
   spec, and resubmission must be answered from the existing job
   (200, attempts unchanged — zero new shards executed).
3. **SIGKILL and resume** — kill -9 the service once the running
   campaign has checkpoints on disk, restart on the same data dir:
   the job is re-queued, resumes from the journal
   (``shards_resumed`` > 0), and finishes bit-identical to act 2.
4. **Cancel** — a running campaign is cancelled cooperatively; the
   queue ends with no orphaned ``running`` entries and resubmission
   resumes the cancelled job's checkpoints to completion.
5. **Stream** — the NDJSON ``/events`` endpoint returns bytes
   identical to the on-disk ``events.jsonl``, including when
   reassembled from an offset after a disconnect.

Deterministic spec seeds; a failure reproduces by rerunning.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fleet import CampaignRunner, spec_from_dict  # noqa: E402
from repro.service import CampaignService, ServiceClient  # noqa: E402


def make_spec(groups=12_000, shards=16, seed=29) -> dict:
    return {
        "fleet": {
            "groups": groups,
            "disks_per_group": 4,
            "mttr_hours": 36.0,
            "spare_delay_hours": 6.0,
            "classes": [{"mttf_hours": 2.5e4, "lse_burst_rate_per_hour": 3e-4}],
        },
        "policies": [
            {"name": "weekly", "latent_window_hours": 84.0},
            {"name": "staggered", "algorithm": "staggered",
             "latent_window_hours": 62.0},
        ],
        "mission_years": 6.0,
        "seed": seed,
        "shards": shards,
    }


def say(msg: str) -> None:
    print(f"serve-smoke: {msg}", flush=True)


def fail(msg: str) -> "NoReturn":  # noqa: F821
    print(f"serve-smoke: FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


def start_serve(data_dir: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]
    )
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         "--data-dir", data_dir, "--port", "0", "--status-interval", "0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on " in line:
            return proc, line.split("listening on ", 1)[1].split()[0]
        if proc.poll() is not None:
            fail(f"serve exited at startup: {proc.stdout.read()}")
    fail("serve never reported its port")


def wait_for_checkpoints(path: str, minimum: int, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.isdir(path) and len(os.listdir(path)) >= minimum:
            return
        time.sleep(0.02)
    fail(f"fewer than {minimum} checkpoints appeared in {path}")


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    data_dir = os.path.join(tmp, "data")
    spec = make_spec()

    # Act 1: contract against a real subprocess service.
    proc, url = start_serve(data_dir)
    job_id = None
    try:
        client = ServiceClient(url, client="smoke")
        status, payload = client.health()
        if status != 200 or payload.get("ok") is not True:
            fail(f"healthz: {status} {payload}")
        status, payload = client.job("no-such-job")
        if status != 404:
            fail(f"unknown id should 404, got {status}")
        status, payload = client.submit({"fleet": {}})
        if status != 400:
            fail(f"malformed spec should 400, got {status}")
        say("act 1 ok: health, 404, 400 contract")

        status, payload = client.submit(spec)
        if status != 201 or not payload["created"]:
            fail(f"submit: {status} {payload}")
        job_id = payload["job"]["id"]
        say(f"act 1 ok: campaign {job_id[:12]} submitted")

        # Act 3 setup: kill once checkpoints exist.
        checkpoints = os.path.join(
            data_dir, "campaigns", job_id, "journal", "checkpoints"
        )
        wait_for_checkpoints(checkpoints, 2)
    finally:
        proc.kill()
        proc.wait()
    say("act 3: SIGKILLed the service mid-campaign")

    record = json.load(open(os.path.join(data_dir, "jobs", f"{job_id}.json")))
    if record["state"] != "running":
        fail(f"dead service should leave job running on disk: {record['state']}")

    # Act 3: restart in-process on the same data dir; resume must be
    # a journal replay, then Act 2's bit-identity check.
    with CampaignService(data_dir, port=0, status_interval=0.0) as svc:
        if svc.queue.recovered != (job_id,):
            fail(f"recovery missed the orphan: {svc.queue.recovered}")
        client = ServiceClient(svc.url, client="smoke")
        final = client.wait(job_id, timeout=300)
        if final["state"] != "done":
            fail(f"resumed job ended {final['state']}: {final.get('error')}")
        if final["attempts"] != 2:
            fail(f"expected 2 attempts (one per service), got {final['attempts']}")
        if final["result"]["shards_resumed"] < 2:
            fail("resume did not replay journalled shards")
        say(
            f"act 3 ok: resumed {final['result']['shards_resumed']} shards "
            f"from checkpoints, completed {final['result']['shards_completed']}"
        )

        direct = CampaignRunner(spec_from_dict(spec)).run().metrics_dict()
        if final["result"]["metrics"] != json.loads(json.dumps(direct)):
            fail("service metrics differ from direct CampaignRunner run")
        say("act 2 ok: metrics bit-identical to a direct run")

        status, payload = client.submit(spec)
        if status != 200 or payload["created"] or payload["job"]["attempts"] != 2:
            fail(f"duplicate submit not answered from existing job: "
                 f"{status} {payload}")
        say("act 2 ok: duplicate submission answered from existing job")

        # Act 4: cancel a fresh running campaign, then resume it.
        spec2 = make_spec(seed=31)
        status, payload = client.submit(spec2)
        job2 = payload["job"]["id"]
        wait_for_checkpoints(
            os.path.join(data_dir, "campaigns", job2, "journal", "checkpoints"), 1
        )
        client.cancel(job2)
        final2 = client.wait(job2, timeout=60)
        if final2["state"] != "cancelled":
            fail(f"cancel ended {final2['state']}")
        if svc.queue.counts()["running"] != 0:
            fail("orphaned running entry after cancel")
        status, payload = client.submit(spec2)
        if status != 200 or payload["job"]["state"] != "queued":
            fail(f"resubmit of cancelled job did not requeue: {status}")
        final2 = client.wait(job2, timeout=300)
        if final2["state"] != "done":
            fail(f"cancelled-then-resubmitted job ended {final2['state']}")
        direct2 = CampaignRunner(spec_from_dict(spec2)).run().metrics_dict()
        if final2["result"]["metrics"] != json.loads(json.dumps(direct2)):
            fail("metrics after cancel+resume differ from direct run")
        say(
            f"act 4 ok: cancelled, resumed "
            f"({final2['result']['shards_resumed']} shards from checkpoints), "
            "bit-identical"
        )

        # Act 5: streamed events == file bytes, with offset reassembly.
        status, streamed = client.events(job_id)
        events_path = os.path.join(
            data_dir, "campaigns", job_id, "obs", "events.jsonl"
        )
        disk = open(events_path, "rb").read()
        if status != 200 or streamed != disk:
            fail("streamed events differ from events.jsonl")
        cut = len(disk) // 3
        reassembled = (
            client.events(job_id, offset=0)[1][:cut]
            + client.events(job_id, offset=cut)[1]
        )
        if reassembled != disk:
            fail("offset reassembly differs from events.jsonl")
        say(f"act 5 ok: {len(disk)} event bytes byte-identical over HTTP")

    say("all acts passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
