"""Developer tooling: pytest plugins and CI helpers (not shipped)."""
