"""Minimal per-test wall-clock timeout plugin (SIGALRM-based).

The container has no ``pytest-timeout``; this plugin supplies the one
feature the ``make tier1`` target needs — fail any single test that
wedges instead of hanging CI forever.  Load it explicitly::

    PYTHONPATH=src:. pytest -p tools.pytest_timeout_lite --lite-timeout 120

Limits apply to the test call phase on the main thread via
``SIGALRM``/``setitimer``, so this is POSIX-only; on platforms without
``SIGALRM`` the option degrades to a no-op rather than breaking the
run.  A fired timeout raises inside the test and is reported as a
failure whose message names the timed-out test's node id.
"""

from __future__ import annotations

import signal

import pytest


class TestTimeout(BaseException):
    """A test exceeded its --lite-timeout budget.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so a
    test's own ``except Exception`` retry loop cannot swallow the
    timeout and wedge the run regardless — the whole point of the
    plugin is that *no* test body gets to outstay its budget.
    """


def pytest_addoption(parser):
    group = parser.getgroup("timeout-lite")
    group.addoption(
        "--lite-timeout",
        action="store",
        type=float,
        default=0.0,
        help="per-test timeout in seconds (0 disables; SIGALRM, main thread)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = float(item.config.getoption("--lite-timeout"))
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def fire(signum, frame):
        raise TestTimeout(
            f"{item.nodeid} exceeded the {seconds:g}s per-test timeout"
        )

    previous = signal.signal(signal.SIGALRM, fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
