"""Fleet-campaign smoke: kill it, wedge it, resume it — bit-identically.

``make fleet-smoke`` runs this end to end.  Five acts — the first four
are acceptance criteria from PR 7, the fifth from PR 8:

1. **Baseline** — run a small campaign serially, record its metrics
   and journal-audit its checkpoints.
2. **SIGKILL the driver** — launch the same campaign as a child
   process, SIGKILL the *whole driver* once checkpoints start
   appearing, then resume in-process: the resumed run must skip every
   journalled shard (``shards_resumed`` > 0, all checkpoint hits) and
   finish bit-identical to the baseline.
3. **SIGKILL a worker** — run under supervision with a shard task that
   kills its own worker once; the campaign must retry it and still
   match the baseline exactly.
4. **Wedge a worker** — a shard task that sleeps forever on every
   attempt must trip the hung-task deadline, exhaust its retries, and
   degrade the campaign to an explicit ``completeness < 1`` with every
   other shard's results intact.
5. **Watch it die and come back** — run the campaign under a
   :class:`~repro.obs.CampaignMonitor`, interrupt it mid-flight, then
   resume with a *fresh* monitor on the same observability directory:
   the ``progress`` values in the continuous ``events.jsonl`` must be
   monotone non-decreasing across the interruption (durable progress
   only counts journalled shards), the final ``status.json`` must
   reach progress 1.0, and the resumed metrics must stay bit-identical
   to the baseline — monitoring is passive.

Everything is deterministic (fixed spec seed), so a failure here is
reproducible by rerunning the same command.
"""

from __future__ import annotations

import functools
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fleet import (  # noqa: E402
    CampaignRunner,
    CampaignSpec,
    DriveClass,
    FleetSpec,
    ScrubPolicySpec,
    fleet_shard_task,
)
from repro.parallel import RetryPolicy  # noqa: E402
from repro.verify import check_campaign_journal  # noqa: E402


def make_spec() -> CampaignSpec:
    return CampaignSpec(
        fleet=FleetSpec(
            groups=240,
            disks_per_group=4,
            mttr_hours=36.0,
            spare_delay_hours=6.0,
            classes=(
                DriveClass(mttf_hours=2.5e4, lse_burst_rate_per_hour=3e-4),
            ),
        ),
        policies=(
            ScrubPolicySpec(name="weekly", latent_window_hours=84.0),
            ScrubPolicySpec(
                name="staggered", algorithm="staggered",
                latent_window_hours=62.0,
            ),
        ),
        mission_years=6.0,
        seed=13,
        shards=8,
    )


_FAST = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_max=0.0, jitter=0.0)

#: Child-process entry: run the campaign with a journal, slowly enough
#: for the parent to observe checkpoints before SIGKILLing us.
_CHILD_SNIPPET = """
import sys, time
sys.path.insert(0, {src!r})
from tools.fleet_smoke import make_spec
from repro.fleet import CampaignRunner

def dawdle(shard_index, result):
    print(f"shard {{shard_index}} checkpointed", flush=True)
    time.sleep(0.2)

CampaignRunner(make_spec(), journal_dir={journal!r}, on_shard=dawdle).run()
print("UNEXPECTED: campaign finished before the kill", flush=True)
"""


def _kill_shard_once(sentinel_dir: str, **params):
    sentinel = os.path.join(sentinel_dir, f"shard-{params['shard_index']}")
    if params["shard_index"] == 3 and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return fleet_shard_task(**params)


def _wedge_shard(**params):
    if params["shard_index"] == 5:
        time.sleep(3600.0)
    return fleet_shard_task(**params)


def check(label: str, ok: bool, detail: str = "") -> bool:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}" + (f": {detail}" if detail else ""))
    return ok


def main() -> int:
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    spec = make_spec()
    failures = 0

    with tempfile.TemporaryDirectory() as tmp:
        print("act 1: baseline campaign")
        baseline_journal = os.path.join(tmp, "baseline")
        baseline = CampaignRunner(spec, journal_dir=baseline_journal).run()
        failures += not check(
            "campaign complete", baseline.completeness == 1.0
        )
        failures += not check(
            "losses observed", all(p.losses > 0 for p in baseline.policies),
            f"{[p.losses for p in baseline.policies]}",
        )
        verified = check_campaign_journal(baseline_journal, spec)
        failures += not check(
            "journal audit", verified == baseline.shards_total,
            f"{verified} checkpoints verified",
        )

        print("act 2: SIGKILL the driver mid-campaign, then resume")
        journal = os.path.join(tmp, "killed")
        child = subprocess.Popen(
            [sys.executable, "-c",
             _CHILD_SNIPPET.format(src=os.path.join(repo, "src"), journal=journal)],
            cwd=repo,
            env=dict(os.environ, PYTHONPATH=os.path.join(repo, "src")),
            stdout=subprocess.PIPE,
            text=True,
        )
        checkpoints_seen = 0
        deadline = time.monotonic() + 120.0
        while checkpoints_seen < 3 and time.monotonic() < deadline:
            line = child.stdout.readline()
            if not line:
                break
            if "checkpointed" in line:
                checkpoints_seen += 1
        child.kill()  # SIGKILL: no cleanup, no atexit, mid-campaign
        child.wait()
        failures += not check(
            "driver killed after some checkpoints", 1 <= checkpoints_seen < 8,
            f"{checkpoints_seen} shards checkpointed before the kill",
        )
        resumed = CampaignRunner(spec, journal_dir=journal).run()
        failures += not check(
            "resume skipped journalled shards",
            resumed.shards_resumed >= checkpoints_seen > 0,
            f"{resumed.shards_resumed} resumed from checkpoints",
        )
        failures += not check(
            "resumed run bit-identical to baseline",
            resumed.metrics_dict() == baseline.metrics_dict(),
        )

        print("act 3: SIGKILLed shard worker is retried")
        sentinels = os.path.join(tmp, "sentinels")
        os.makedirs(sentinels)
        survived = CampaignRunner(
            spec,
            journal_dir=os.path.join(tmp, "worker-killed"),
            workers=2,
            retry=_FAST,
            task=functools.partial(_kill_shard_once, sentinels),
        ).run()
        failures += not check(
            "worker death detected and retried",
            survived.supervision.get("worker_deaths", 0) == 1
            and survived.supervision.get("retries", 0) >= 1,
            f"supervision {survived.supervision}",
        )
        failures += not check(
            "post-retry campaign bit-identical to baseline",
            survived.metrics_dict() == baseline.metrics_dict(),
        )

        print("act 4: wedged worker degrades gracefully")
        degraded = CampaignRunner(
            spec,
            workers=2,
            task_timeout=5.0,
            heartbeat_interval=0.2,
            retry=RetryPolicy(
                max_attempts=2, backoff_base=0.0, backoff_max=0.0, jitter=0.0
            ),
            task=_wedge_shard,
        ).run()
        failures += not check(
            "hung shard timed out and was abandoned",
            degraded.shards_failed == 1 and degraded.failed_shards == [5],
            f"failed shards {degraded.failed_shards}",
        )
        failures += not check(
            "completeness reported explicitly",
            0.0 < degraded.completeness < 1.0,
            f"completeness {degraded.completeness:.3f}",
        )
        expected_groups = spec.fleet.groups - spec.shard_ranges()[5][1]
        failures += not check(
            "surviving shards fully merged",
            all(p.groups == expected_groups for p in degraded.policies),
        )

        print("act 5: monitored campaign, interrupted and resumed")
        from repro.obs import CampaignMonitor

        obs_dir = os.path.join(tmp, "obs")
        monitored_journal = os.path.join(tmp, "monitored")

        class _Interrupt(Exception):
            pass

        def interrupt_midway(shard_index, result):
            if shard_index == 3:
                raise _Interrupt  # stands in for ^C / SIGKILL

        try:
            CampaignRunner(
                spec,
                journal_dir=monitored_journal,
                on_shard=interrupt_midway,
                monitor=CampaignMonitor(obs_dir, interval=0.0),
            ).run()
            failures += not check("campaign was interrupted", False)
        except _Interrupt:
            pass
        resumed_monitored = CampaignRunner(
            spec,
            journal_dir=monitored_journal,
            monitor=CampaignMonitor(obs_dir, interval=0.0),
        ).run()
        failures += not check(
            "resume skipped monitored checkpoints",
            resumed_monitored.shards_resumed >= 1,
            f"{resumed_monitored.shards_resumed} resumed",
        )
        with open(os.path.join(obs_dir, "events.jsonl")) as fh:
            events = [json.loads(line) for line in fh if line.strip()]
        progress = [e["progress"] for e in events if "progress" in e]
        failures += not check(
            "progress monotone across interruption + resume",
            bool(progress) and progress == sorted(progress),
            f"{len(progress)} samples, "
            f"{progress[0] if progress else '-'} -> "
            f"{progress[-1] if progress else '-'}",
        )
        with open(os.path.join(obs_dir, "status.json")) as fh:
            status = json.load(fh)
        failures += not check(
            "final status complete",
            status["state"] == "done" and status["progress"] == 1.0,
            f"state {status['state']}, progress {status['progress']}",
        )
        failures += not check(
            "monitored resume bit-identical to baseline",
            resumed_monitored.metrics_dict() == baseline.metrics_dict(),
        )

    print(json.dumps({"fleet_smoke_failures": failures}))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
